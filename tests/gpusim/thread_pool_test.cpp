#include "gpusim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace csaw::sim {
namespace {

TEST(ThreadPool, ExecutesEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.parallel_for(kItems, [&](std::size_t i, std::uint32_t worker) {
    EXPECT_LT(worker, 4u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, WidthOneRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i, std::uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReuseAcrossManyBatches) {
  // The pool is persistent: the same workers serve many launches (the
  // kernel-per-step pattern of the engines).
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t, std::uint32_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, std::uint32_t) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // A throwing batch must not poison the pool.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(64, [&](std::size_t, std::uint32_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A worker-launched item may itself fan out on the same pool (the
  // multi-device path runs device groups whose kernels fan out again).
  ThreadPool pool(3);
  std::vector<std::atomic<int>> inner_hits(4 * 32);
  pool.parallel_for(4, [&](std::size_t outer, std::uint32_t) {
    pool.parallel_for(32, [&](std::size_t inner, std::uint32_t worker) {
      EXPECT_LT(worker, 3u);
      inner_hits[outer * 32 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 1) << "inner item " << i;
  }
}

TEST(ThreadPool, ResolveNumThreadsHonorsRequestAndEnv) {
  EXPECT_EQ(resolve_num_threads(3), 3u);
  EXPECT_EQ(resolve_num_threads(1), 1u);

  ::setenv("CSAW_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(resolve_num_threads(0), 5u);
  EXPECT_EQ(resolve_num_threads(2), 2u);  // explicit request wins
  ::unsetenv("CSAW_THREADS");
  EXPECT_GE(resolve_num_threads(0), 1u);  // hardware fallback
}

}  // namespace
}  // namespace csaw::sim
