#include "gpusim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace csaw::sim {
namespace {

TEST(ThreadPool, ExecutesEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.parallel_for(kItems, [&](std::size_t i, std::uint32_t worker) {
    EXPECT_LT(worker, 4u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, WidthOneRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i, std::uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReuseAcrossManyBatches) {
  // The pool is persistent: the same workers serve many launches (the
  // kernel-per-step pattern of the engines).
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t, std::uint32_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, std::uint32_t) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // A throwing batch must not poison the pool.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(64, [&](std::size_t, std::uint32_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A worker-launched item may itself fan out on the same pool (the
  // multi-device path runs device groups whose kernels fan out again).
  ThreadPool pool(3);
  std::vector<std::atomic<int>> inner_hits(4 * 32);
  pool.parallel_for(4, [&](std::size_t outer, std::uint32_t) {
    pool.parallel_for(32, [&](std::size_t inner, std::uint32_t worker) {
      EXPECT_LT(worker, 3u);
      inner_hits[outer * 32 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 1) << "inner item " << i;
  }
}

TEST(ThreadPool, MaxWorkersCoversExternalSlots) {
  // External slot 0 reuses identity 0, so a single-external pool's
  // identity bound equals its width; every further slot extends it.
  EXPECT_EQ(ThreadPool(4).max_workers(), 4u);
  EXPECT_EQ(ThreadPool(4, 1).max_workers(), 4u);
  EXPECT_EQ(ThreadPool(4, 3).max_workers(), 6u);
  EXPECT_EQ(ThreadPool(1, 2).max_workers(), 2u);
}

TEST(ThreadPool, ConcurrentExternalThreadsGetDistinctIdentities) {
  // Two external threads drive separate batches at the same time (the
  // service tier's batch-runner model): each must hold its own worker
  // identity — aliased identities would alias per-batch engine scratch —
  // and a third external thread must be refused while both slots are
  // held, not silently admitted.
  ThreadPool pool(2, 2);
  ASSERT_EQ(pool.max_workers(), 3u);

  std::atomic<bool> release{false};
  std::atomic<bool> started_a{false};
  std::atomic<bool> started_b{false};
  std::mutex ids_mu;
  std::set<std::uint32_t> ids_a;  // identities of items thread A executed
  std::set<std::uint32_t> ids_b;

  const auto driver = [&](std::atomic<bool>& started,
                          std::set<std::uint32_t>& ids) {
    const std::thread::id self = std::this_thread::get_id();
    pool.parallel_for(2, [&](std::size_t, std::uint32_t worker) {
      EXPECT_LT(worker, pool.max_workers());
      if (std::this_thread::get_id() == self) {
        std::lock_guard<std::mutex> lock(ids_mu);
        ids.insert(worker);
      }
      // Any item of this batch executing implies its driver registered
      // (registration precedes the batch becoming visible to workers) —
      // its external slot is held until the batch completes, which the
      // gate below delays until the refusal has been observed.
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  };
  std::thread a([&] { driver(started_a, ids_a); });
  std::thread b([&] { driver(started_b, ids_b); });
  while (!started_a.load() || !started_b.load()) std::this_thread::yield();

  // Both slots held: a third concurrent external thread is refused.
  EXPECT_THROW(pool.parallel_for(2, [](std::size_t, std::uint32_t) {}),
               CheckError);

  release.store(true);
  a.join();
  b.join();

  // Each driver executed at least its blocking item, always under one
  // identity, and the two drivers' identities differ.
  ASSERT_EQ(ids_a.size(), 1u);
  ASSERT_EQ(ids_b.size(), 1u);
  EXPECT_NE(*ids_a.begin(), *ids_b.begin());

  // Slots were released with the batches: a fresh external batch admits.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t, std::uint32_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 8u);
}

TEST(ThreadPool, CrossPoolDrivingReRegistersInTheOtherPool) {
  // A worker identity is only meaningful in the pool that issued it. A
  // thread holding a high external identity in pool P (here: slot 1 of
  // a width-4 pool → identity 4) that drives a batch on a *different*
  // pool Q must go through Q's own admission and execute under a
  // Q-issued identity — reusing P's identity would index past Q-sized
  // scratch — and must get P's identity back once Q's batch unwinds.
  ThreadPool p(4, 2);
  ThreadPool q(2, 1);

  // Park another external thread in P's slot 0 so the main thread's
  // registration lands in slot 1 (identity 4).
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  std::thread occupant([&] {
    p.parallel_for(2, [&](std::size_t, std::uint32_t) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!parked.load()) std::this_thread::yield();

  const std::thread::id self = std::this_thread::get_id();
  std::mutex mu;
  std::vector<std::uint32_t> own_p_ids;
  std::vector<std::uint32_t> q_ids;
  std::vector<std::uint32_t> restored_ids;
  // Items not executed by the main thread spin until it has done the
  // cross-pool work: q admits one external driver at a time, and the
  // spin guarantees the main thread gets at least one item (the free
  // workers cannot finish the batch without it).
  std::atomic<bool> done{false};
  p.parallel_for(4, [&](std::size_t, std::uint32_t worker) {
    if (std::this_thread::get_id() != self) {
      while (!done.load()) std::this_thread::yield();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      own_p_ids.push_back(worker);
    }
    q.parallel_for(2, [&](std::size_t, std::uint32_t q_worker) {
      std::lock_guard<std::mutex> lock(mu);
      q_ids.push_back(q_worker);
    });
    // Single-item inline shortcut reads the thread's current identity:
    // after Q's batch unwound it must be P's again.
    p.parallel_for(1, [&](std::size_t, std::uint32_t restored) {
      std::lock_guard<std::mutex> lock(mu);
      restored_ids.push_back(restored);
    });
    done.store(true);
  });
  release.store(true);
  occupant.join();

  for (const std::uint32_t id : own_p_ids) EXPECT_EQ(id, 4u);
  ASSERT_FALSE(q_ids.empty());
  for (const std::uint32_t id : q_ids) EXPECT_LT(id, q.max_workers());
  for (const std::uint32_t id : restored_ids) EXPECT_EQ(id, 4u);
}

TEST(ThreadPool, ResolveNumThreadsHonorsRequestAndEnv) {
  EXPECT_EQ(resolve_num_threads(3), 3u);
  EXPECT_EQ(resolve_num_threads(1), 1u);

  ::setenv("CSAW_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(resolve_num_threads(0), 5u);
  EXPECT_EQ(resolve_num_threads(2), 2u);  // explicit request wins
  ::unsetenv("CSAW_THREADS");
  EXPECT_GE(resolve_num_threads(0), 1u);  // hardware fallback
}

}  // namespace
}  // namespace csaw::sim
