#include "gpusim/cost_model.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace csaw::sim {
namespace {

DeviceParams test_params() {
  DeviceParams p;
  p.kernel_launch_us = 0.0;  // isolate the roofline terms
  return p;
}

KernelStats busy_stats() {
  KernelStats s;
  s.warps = 10000;  // plenty of parallelism: no stall penalty
  s.lockstep_rounds = 1'000'000'000;
  s.global_bytes = 1'000'000;
  return s;
}

TEST(KernelStats, MergeSumsEveryField) {
  KernelStats a, b;
  a.lockstep_rounds = 1;
  a.global_bytes = 2;
  a.atomic_ops = 3;
  a.atomic_conflicts = 4;
  a.warps = 5;
  a.select_iterations = 6;
  a.collision_searches = 7;
  a.collisions = 8;
  a.sampled_vertices = 9;
  b = a;
  a.merge(b);
  EXPECT_EQ(a.lockstep_rounds, 2u);
  EXPECT_EQ(a.global_bytes, 4u);
  EXPECT_EQ(a.atomic_ops, 6u);
  EXPECT_EQ(a.atomic_conflicts, 8u);
  EXPECT_EQ(a.warps, 10u);
  EXPECT_EQ(a.select_iterations, 12u);
  EXPECT_EQ(a.collision_searches, 14u);
  EXPECT_EQ(a.collisions, 16u);
  EXPECT_EQ(a.sampled_vertices, 18u);
}

TEST(CostModel, ZeroWarpsIsZeroTime) {
  const CostModel model(test_params());
  EXPECT_EQ(model.kernel_seconds(KernelStats{}), 0.0);
}

TEST(CostModel, MonotonicInRounds) {
  const CostModel model(test_params());
  KernelStats lo = busy_stats(), hi = busy_stats();
  hi.lockstep_rounds *= 2;
  EXPECT_LT(model.kernel_seconds(lo), model.kernel_seconds(hi));
}

TEST(CostModel, BandwidthBoundKernelsScaleWithBytes) {
  const CostModel model(test_params());
  KernelStats s = busy_stats();
  s.lockstep_rounds = 1;          // negligible compute
  s.global_bytes = 90'000'000'000ull;  // 0.1 s at 900 GB/s
  EXPECT_NEAR(model.kernel_seconds(s), 0.1, 0.01);
}

TEST(CostModel, HalvingResourcesDoublesTime) {
  const CostModel model(test_params());
  const KernelStats s = busy_stats();
  const double full = model.kernel_seconds(s, 1.0);
  const double half = model.kernel_seconds(s, 0.5);
  EXPECT_NEAR(half / full, 2.0, 0.05);
}

TEST(CostModel, FewWarpsPayStallPenalty) {
  const CostModel model(test_params());
  KernelStats many = busy_stats();
  KernelStats few = busy_stats();
  few.warps = 80;  // one warp per SM: cannot hide latency
  // Same total work, fewer warps -> slower.
  EXPECT_GT(model.kernel_seconds(few), model.kernel_seconds(many) * 2.0);
}

TEST(CostModel, AtomicConflictsAddSerialization) {
  const CostModel model(test_params());
  KernelStats clean = busy_stats();
  KernelStats contended = busy_stats();
  contended.atomic_conflicts = 500'000'000;
  EXPECT_GT(model.kernel_seconds(contended), model.kernel_seconds(clean));
}

TEST(CostModel, LaunchOverheadFloorsKernelTime) {
  DeviceParams p;
  p.kernel_launch_us = 5.0;
  const CostModel model(p);
  KernelStats tiny;
  tiny.warps = 1;
  tiny.lockstep_rounds = 1;
  EXPECT_GE(model.kernel_seconds(tiny), 5e-6);
}

TEST(CostModel, TransferUsesLinkBandwidthPlusLatency) {
  DeviceParams p;
  p.link_gbytes_per_sec = 50.0;
  p.link_latency_us = 10.0;
  const CostModel model(p);
  // 5 GB at 50 GB/s = 0.1 s (+10 us latency).
  EXPECT_NEAR(model.transfer_seconds(5'000'000'000ull), 0.1, 1e-3);
  // Latency floor for empty copies.
  EXPECT_NEAR(model.transfer_seconds(0), 10e-6, 1e-9);
}

TEST(CostModel, InvalidFractionRejected) {
  const CostModel model(test_params());
  EXPECT_THROW(model.kernel_seconds(busy_stats(), 0.0), csaw::CheckError);
  EXPECT_THROW(model.kernel_seconds(busy_stats(), 1.5), csaw::CheckError);
}

}  // namespace
}  // namespace csaw::sim
