#include "gpusim/warp.hpp"

#include <gtest/gtest.h>

#include "util/prefix_sum.hpp"

namespace csaw::sim {
namespace {

TEST(Warp, ConstructionCountsWarp) {
  KernelStats stats;
  {
    WarpContext w1(stats);
    WarpContext w2(stats);
  }
  EXPECT_EQ(stats.warps, 2u);
}

TEST(Warp, ChargeRoundsAccumulates) {
  KernelStats stats;
  WarpContext warp(stats);
  warp.charge_rounds(3);
  warp.charge_rounds(4);
  EXPECT_EQ(stats.lockstep_rounds, 7u);
}

TEST(Warp, DivergedRoundsChargeMax) {
  KernelStats stats;
  WarpContext warp(stats);
  const std::vector<std::uint32_t> trips = {1, 9, 3, 0};
  warp.charge_diverged_rounds(trips);
  EXPECT_EQ(stats.lockstep_rounds, 9u);
}

TEST(Warp, GlobalChargesBytesAndOneRound) {
  KernelStats stats;
  WarpContext warp(stats);
  warp.charge_global(128);
  EXPECT_EQ(stats.global_bytes, 128u);
  EXPECT_EQ(stats.lockstep_rounds, 1u);
}

TEST(Warp, AtomicConflictDetectionWithinRound) {
  KernelStats stats;
  WarpContext warp(stats);
  csaw::AtomicBitmap bitmap(64, csaw::BitmapLayout::kContiguous);

  // Lanes hitting bits 0 and 1 share word 0 -> one conflict.
  EXPECT_FALSE(warp.atomic_test_and_set(bitmap, 0));
  EXPECT_FALSE(warp.atomic_test_and_set(bitmap, 1));
  EXPECT_EQ(stats.atomic_ops, 2u);
  EXPECT_EQ(stats.atomic_conflicts, 1u);

  // New round: bit 8 lives in word 1, no conflict.
  warp.end_atomic_round();
  EXPECT_FALSE(warp.atomic_test_and_set(bitmap, 8));
  EXPECT_EQ(stats.atomic_conflicts, 1u);
}

TEST(Warp, StridedBitmapAvoidsConflictContiguousHits) {
  csaw::AtomicBitmap contiguous(64, csaw::BitmapLayout::kContiguous);
  csaw::AtomicBitmap strided(64, csaw::BitmapLayout::kStrided);

  KernelStats cs, ss;
  {
    WarpContext warp(cs);
    for (std::size_t i = 0; i < 8; ++i) warp.atomic_test_and_set(contiguous, i);
  }
  {
    WarpContext warp(ss);
    for (std::size_t i = 0; i < 8; ++i) warp.atomic_test_and_set(strided, i);
  }
  EXPECT_EQ(cs.atomic_conflicts, 7u);  // all in word 0
  EXPECT_EQ(ss.atomic_conflicts, 0u);  // spread across words
}

TEST(Warp, ScanMatchesSequentialAndCharges) {
  KernelStats stats;
  WarpContext warp(stats);
  std::vector<float> data = {1, 2, 3, 4, 5};
  std::vector<float> expected(data.size());
  csaw::inclusive_scan_seq(data, expected);
  warp.scan_inclusive(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_FLOAT_EQ(data[i], expected[i]);
  }
  EXPECT_GT(stats.lockstep_rounds, 0u);
  EXPECT_EQ(stats.global_bytes, 2 * 5 * sizeof(float));
}

TEST(Warp, BinarySearchChargesLockStepRounds) {
  KernelStats stats;
  WarpContext warp(stats);
  warp.charge_binary_search(/*n=*/1024, /*active_lanes=*/4);
  EXPECT_EQ(stats.lockstep_rounds, 11u);  // bit_width(1024) = 11
  EXPECT_EQ(stats.global_bytes, 11u * 4 * sizeof(float));

  // Zero-size or zero lanes: no charge.
  warp.charge_binary_search(0, 10);
  warp.charge_binary_search(10, 0);
  EXPECT_EQ(stats.lockstep_rounds, 11u);
}

}  // namespace
}  // namespace csaw::sim
