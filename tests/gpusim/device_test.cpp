#include "gpusim/device.hpp"

#include <gtest/gtest.h>

namespace csaw::sim {
namespace {

TEST(Device, RunKernelExecutesEveryTask) {
  Device device;
  std::vector<std::uint64_t> seen;
  device.run_kernel("touch", 5, [&](std::uint64_t t, WarpContext& warp) {
    warp.charge_rounds(1);
    seen.push_back(t);
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  ASSERT_EQ(device.kernel_log().size(), 1u);
  EXPECT_EQ(device.kernel_log()[0].stats.warps, 5u);
  EXPECT_GT(device.synchronize(), 0.0);
}

TEST(Device, KernelsOnOneStreamSerialize) {
  Device device;
  auto body = [](std::uint64_t, WarpContext& w) { w.charge_rounds(1000); };
  const auto& first = device.run_kernel("a", 10, body);
  const double first_end = first.end;
  const auto& second = device.run_kernel("b", 10, body);
  EXPECT_GE(second.start, first_end);
}

TEST(Device, KernelsOnDifferentStreamsOverlap) {
  Device device;
  auto body = [](std::uint64_t, WarpContext& w) { w.charge_rounds(1000); };
  device.launch("a", device.stream(0), 0.5, 10, body);
  const auto& b = device.launch("b", device.stream(1), 0.5, 10, body);
  EXPECT_EQ(b.start, 0.0);  // stream 1 was idle
}

TEST(Device, TransfersShareTheLink) {
  Device device;
  auto& t = device.transfer();
  const double end0 = t.host_to_device(device.stream(0), 1 << 20, "p0");
  const double end1 = t.host_to_device(device.stream(1), 1 << 20, "p1");
  // Different streams, same link: the second copy starts after the first.
  EXPECT_GT(end1, end0);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_bytes(), 2u << 20);
}

TEST(Device, TransferThenKernelOrdersOnStream) {
  Device device;
  auto& s = device.stream(1);
  const double copy_end = device.transfer().host_to_device(s, 1 << 20, "p");
  const auto& k = device.launch("k", s, 1.0, 1,
                                [](std::uint64_t, WarpContext& w) {
                                  w.charge_rounds(10);
                                });
  EXPECT_GE(k.start, copy_end);
}

TEST(Device, FractionSlowsKernel) {
  Device a, b;
  auto body = [](std::uint64_t, WarpContext& w) { w.charge_rounds(100000); };
  const auto& full = a.launch("k", a.stream(0), 1.0, 1000, body);
  const auto& quarter = b.launch("k", b.stream(0), 0.25, 1000, body);
  EXPECT_GT(quarter.duration(), full.duration() * 2.0);
}

TEST(Device, KernelDurationsFilterByPrefix) {
  Device device;
  auto body = [](std::uint64_t, WarpContext& w) { w.charge_rounds(1); };
  device.run_kernel("sample_p0", 1, body);
  device.run_kernel("sample_p1", 1, body);
  device.run_kernel("other", 1, body);
  EXPECT_EQ(device.kernel_durations("sample_").size(), 2u);
  EXPECT_EQ(device.kernel_durations("other").size(), 1u);
  EXPECT_EQ(device.kernel_durations("zzz").size(), 0u);
}

TEST(Device, TotalStatsAggregates) {
  Device device;
  auto body = [](std::uint64_t, WarpContext& w) { w.charge_rounds(7); };
  device.run_kernel("a", 2, body);
  device.run_kernel("b", 3, body);
  const KernelStats total = device.total_stats();
  EXPECT_EQ(total.warps, 5u);
  EXPECT_EQ(total.lockstep_rounds, 5u * 7u);
}

TEST(Device, ResetRewindsClocksAndLogs) {
  Device device;
  device.run_kernel("a", 4, [](std::uint64_t, WarpContext& w) {
    w.charge_rounds(100);
  });
  device.transfer().host_to_device(device.stream(0), 1024, "x");
  EXPECT_GT(device.synchronize(), 0.0);
  device.reset();
  EXPECT_EQ(device.synchronize(), 0.0);
  EXPECT_TRUE(device.kernel_log().empty());
  EXPECT_EQ(device.transfer().count(), 0u);
}

TEST(Device, EmptyKernelTakesNoTime) {
  Device device;
  device.run_kernel("empty", 0, [](std::uint64_t, WarpContext&) {});
  EXPECT_EQ(device.synchronize(), 0.0);
}

TEST(Device, ParallelLaunchMatchesSerialRecord) {
  // The same kernel on a serial and a 7-thread device: identical stats,
  // identical simulated duration — the executor is invisible in the log.
  auto body = [](std::uint64_t t, WarpContext& w, std::uint32_t) {
    w.charge_rounds(1 + t % 13);
    w.charge_global(64 * (t % 5));
  };
  Device serial;
  serial.set_num_threads(1);
  const KernelRecord a = serial.run_kernel("k", 500, body);

  Device parallel;
  parallel.set_num_threads(7);
  EXPECT_EQ(parallel.max_workers(), 7u);
  const KernelRecord b = parallel.run_kernel("k", 500, body);

  EXPECT_EQ(a.stats.warps, b.stats.warps);
  EXPECT_EQ(a.stats.lockstep_rounds, b.stats.lockstep_rounds);
  EXPECT_EQ(a.stats.global_bytes, b.stats.global_bytes);
  EXPECT_EQ(a.stats.max_warp_rounds, b.stats.max_warp_rounds);
  EXPECT_EQ(a.stats.occupied_slot_rounds, b.stats.occupied_slot_rounds);
  EXPECT_EQ(a.duration(), b.duration());
}

TEST(Device, ParallelWorkerIdsIndexDisjointScratch) {
  // Regression for the shared-scratch aliasing hazard: each task stamps
  // its worker's scratch slot, recomputes, and verifies no other task
  // observed or clobbered it mid-flight. With the old single shared
  // scratch member this interleaving corrupts the staged values.
  Device device;
  device.set_num_threads(7);
  std::vector<std::vector<std::uint64_t>> scratch(device.max_workers());

  constexpr std::uint64_t kTasks = 2000;
  std::vector<std::uint64_t> sums(kTasks, 0);
  device.run_kernel(
      "scratch_isolation", kTasks,
      [&](std::uint64_t t, WarpContext& warp, std::uint32_t worker) {
        auto& mine = scratch[worker];
        mine.assign(16 + t % 7, t + 1);  // stamp with a task-unique value
        warp.charge_rounds(1);
        std::uint64_t sum = 0;
        for (const std::uint64_t v : mine) {
          ASSERT_EQ(v, t + 1) << "task " << t << " observed foreign scratch";
          sum += v;
        }
        sums[t] = sum;
      });
  for (std::uint64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(sums[t], (16 + t % 7) * (t + 1));
  }
}

TEST(Device, AffinityGroupsRunInTaskOrder) {
  // Tasks in a contiguous run of equal affinity keys share mutable state;
  // the executor must serialize them in task index order.
  Device device;
  device.set_num_threads(7);
  constexpr std::uint64_t kGroups = 64;
  constexpr std::uint64_t kPerGroup = 10;
  std::vector<std::vector<std::uint64_t>> per_group(kGroups);
  device.run_kernel(
      "affinity", kGroups * kPerGroup,
      [&](std::uint64_t t, WarpContext& warp, std::uint32_t) {
        warp.charge_rounds(1 + t % 3);
        per_group[t / kPerGroup].push_back(t);
      },
      [](std::uint64_t t) { return t / kPerGroup; });
  for (std::uint64_t g = 0; g < kGroups; ++g) {
    ASSERT_EQ(per_group[g].size(), kPerGroup);
    for (std::uint64_t i = 0; i < kPerGroup; ++i) {
      EXPECT_EQ(per_group[g][i], g * kPerGroup + i) << "group " << g;
    }
  }
}

TEST(Device, SerialBodiesStaySerialEvenWithExecutor) {
  // Legacy 2-arg bodies may touch shared state: they must keep running
  // serially in task order even when a pool is attached.
  Device device;
  device.set_num_threads(7);
  std::vector<std::uint64_t> seen;
  device.run_kernel("legacy", 100, [&](std::uint64_t t, WarpContext& w) {
    w.charge_rounds(1);
    seen.push_back(t);
  });
  ASSERT_EQ(seen.size(), 100u);
  for (std::uint64_t t = 0; t < 100; ++t) EXPECT_EQ(seen[t], t);
}

TEST(Device, SetNumThreadsZeroResolvesAuto) {
  Device device;
  device.set_num_threads(0);
  EXPECT_GE(device.max_workers(), 1u);
}

}  // namespace
}  // namespace csaw::sim
