// The fault-tolerant serving path (PR 7): deadline admission and
// expiry, cooperative cancellation of queued requests, injected
// partition-copy faults absorbed by retry, terminal transfer failures
// that fail exactly one batch, and the health() snapshot. The two
// acceptance contracts live here: a fail-twice fault under a 3-attempt
// retry budget is byte-invisible, and an exhausted budget fails the
// batch typed, leaves the cache consistent, and lets the next batch on
// the same graph succeed.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "oom/cache/fault_injector.hpp"
#include "oom/partitioned_graph.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kWalkLength = 8;
constexpr std::uint32_t kBase = 64;

const std::shared_ptr<const CsrGraph>& paged_graph() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 93));
  return g;
}

ServiceConfig paged_config() {
  ServiceConfig config;
  config.options.num_threads = 1;
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  return config;
}

/// Seeds confined to partition 0 of the service's partitioning: the
/// first demand load of the batch is then partition 0 by construction,
/// so a fault scripted there is guaranteed to hit the demand path.
std::vector<VertexId> partition0_seeds(std::uint32_t n) {
  const PartitionedGraph parts(*paged_graph(),
                               paged_config().options.num_partitions);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < paged_graph()->num_vertices() && seeds.size() < n;
       ++v) {
    if (parts.part_of(v) == 0) seeds.push_back(v);
  }
  EXPECT_EQ(seeds.size(), n);
  return seeds;
}

SampleRequest walk_request(std::uint32_t rng_base = kBase) {
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, kWalkLength, partition0_seeds(12));
  request.rng_base = rng_base;
  return request;
}

RunResult run_one(Service& service, SampleRequest request) {
  Submission submission = service.submit(std::move(request));
  EXPECT_TRUE(submission.accepted());
  service.drain();
  return submission.result.get();
}

void expect_same_samples(const SampleStore& a, const SampleStore& b) {
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (std::uint32_t i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.edges(i), b.edges(i)) << "instance " << i;
  }
}

TEST(ServiceFault, RetriedFaultsAreByteInvisible) {
  // Acceptance contract 1: partition 0 fails its first two copy attempts
  // and the default 3-attempt budget absorbs them — the batch's samples
  // are byte-identical to a fault-free service, only simulated time and
  // the fault counters move.
  Service clean(paged_config());
  clean.add_graph("g", paged_graph());
  const RunResult ref = run_one(clean, walk_request());
  ASSERT_TRUE(ref.oom.has_value());

  ServiceConfig config = paged_config();
  auto injector = std::make_shared<TransferFaultInjector>();
  injector->fail_partition(0, 2);
  config.options.transfer_faults = injector;
  config.options.transfer_retry_limit = 3;
  Service service(config);
  service.add_graph("g", paged_graph());
  const RunResult run = run_one(service, walk_request());

  expect_same_samples(run.samples, ref.samples);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.transfer_faults, 2u);
  EXPECT_EQ(stats.transfer_retries, 2u);
  // The injector was consulted for every attempt partition 0 made plus
  // one per other load site.
  EXPECT_GE(injector->attempts_seen(), 3u);
}

TEST(ServiceFault, ExhaustedRetryFailsOnlyThatBatch) {
  // Acceptance contract 2: with a 1-attempt budget, a scripted fault is
  // terminal — every future of the batch fails typed as
  // kTransferFailed, the cache settles consistent (nothing pinned,
  // nothing stuck kLoading), and the next batch on the same graph
  // succeeds byte-identically to a fault-free run.
  Service clean(paged_config());
  clean.add_graph("g", paged_graph());
  const RunResult ref = run_one(clean, walk_request());

  ServiceConfig config = paged_config();
  config.start_paused = true;  // let both requests coalesce into one batch
  auto injector = std::make_shared<TransferFaultInjector>();
  injector->fail_partition(0, 1);
  config.options.transfer_faults = injector;
  config.options.transfer_retry_limit = 1;
  Service service(config);
  service.add_graph("g", paged_graph());

  Submission a = service.submit(walk_request(kBase));
  Submission b = service.submit(walk_request(kBase + 100));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  service.resume();
  service.drain();

  // Every future of the condemned batch resolves, with the typed error.
  for (Submission* s : {&a, &b}) {
    try {
      s->result.get();
      FAIL() << "the faulted batch should have failed";
    } catch (const RequestError& e) {
      EXPECT_EQ(e.outcome(), RequestOutcome::kTransferFailed);
      EXPECT_NE(std::string(e.what()).find("partition 0"), std::string::npos)
          << e.what();
    }
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.transfer_failed, 2u);
  EXPECT_EQ(stats.sampled_edges, 0u);

  // The scripted site was consumed by the failure: the same request
  // succeeds on the next batch, and its bytes match the fault-free run.
  const RunResult retry = run_one(service, walk_request());
  expect_same_samples(retry.samples, ref.samples);
  stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 2u);

  // The health window remembers the burst: two of the last three
  // retired requests failed.
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.window, 3u);
  EXPECT_EQ(health.recent_failures, 2u);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_EQ(health.inflight_batches, 0u);
}

TEST(ServiceFault, ExpiredDeadlineIsRejectedAtAdmission) {
  ServiceConfig config;
  Service service(config);
  service.add_graph(
      "g", std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95)));

  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{1, 2, 3});
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Submission submission = service.submit(std::move(request));
  EXPECT_FALSE(submission.accepted());
  EXPECT_EQ(submission.rejected, RejectReason::kDeadlineExpired);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected_deadline_expired, 1u);
  EXPECT_EQ(stats.rejected_total(), 1u);
}

TEST(ServiceFault, QueuedRequestFailsFastWhenItsDeadlineExpires) {
  // The dispatcher owns the timer: even with the scheduler paused (the
  // request can never dispatch), the wheel wakes the dispatcher at the
  // deadline and the queued request fails without an engine run.
  ServiceConfig config;
  config.start_paused = true;
  Service service(config);
  service.add_graph(
      "g", std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95)));

  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{1, 2, 3});
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  Submission submission = service.submit(std::move(request));
  ASSERT_TRUE(submission.accepted());

  ASSERT_EQ(submission.result.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  try {
    submission.result.get();
    FAIL() << "the expired request should have failed";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.outcome(), RequestOutcome::kDeadlineExceeded);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.batches, 0u);  // never dispatched
  EXPECT_EQ(service.health().timed_requests, 0u);  // timer retired
  service.resume();
}

TEST(ServiceFault, CancelledQueuedRequestIsSweptNotDispatched) {
  ServiceConfig config;
  config.start_paused = true;
  Service service(config);
  service.add_graph(
      "g", std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95)));

  CancelSource source;
  SampleRequest cancelled = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{1, 2, 3});
  cancelled.cancel = source.token();
  cancelled.rng_base = kBase;
  SampleRequest untouched = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{4, 5, 6});
  untouched.rng_base = kBase + 100;

  Submission a = service.submit(std::move(cancelled));
  Submission b = service.submit(std::move(untouched));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  source.cancel();  // fired while queued, before any batch formed
  service.resume();
  service.drain();

  try {
    a.result.get();
    FAIL() << "the cancelled request should have failed";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.outcome(), RequestOutcome::kCancelled);
  }
  EXPECT_GT(b.result.get().sampled_edges(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].cancelled, 1u);
  EXPECT_EQ(stats.tenants[0].failed, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
}

TEST(ServiceFault, HealthSnapshotTracksQueueTimersAndWindow) {
  ServiceConfig config;
  config.start_paused = true;
  Service service(config);
  service.add_graph(
      "g", std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95)));

  SampleRequest plain = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{1, 2, 3});
  plain.rng_base = kBase;
  SampleRequest timed = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 4, std::vector<VertexId>{4, 5, 6});
  timed.rng_base = kBase + 100;
  timed.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);

  Submission a = service.submit(std::move(plain));
  Submission b = service.submit(std::move(timed));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());

  ServiceHealth health = service.health();
  EXPECT_TRUE(health.accepting);
  EXPECT_TRUE(health.paused);
  EXPECT_EQ(health.queue_depth, 2u);
  EXPECT_EQ(health.inflight_batches, 0u);
  EXPECT_EQ(health.executing_batches, 0u);
  EXPECT_EQ(health.timed_requests, 1u);
  EXPECT_EQ(health.window, 0u);

  service.resume();
  service.drain();
  EXPECT_GT(a.result.get().sampled_edges(), 0u);
  EXPECT_GT(b.result.get().sampled_edges(), 0u);

  health = service.health();
  EXPECT_FALSE(health.paused);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_EQ(health.inflight_batches, 0u);
  EXPECT_EQ(health.timed_requests, 0u);  // the generous deadline retired
  EXPECT_EQ(health.window, 2u);
  EXPECT_EQ(health.recent_failures, 0u);

  service.shutdown();
  EXPECT_FALSE(service.health().accepting);
}

}  // namespace
}  // namespace csaw
