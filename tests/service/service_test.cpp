// Admission control, registry residency, batching bookkeeping and
// lifecycle of csaw::Service. The byte-level solo-vs-coalesced contract
// has its own suite (service_determinism_test.cpp); this one proves the
// service's control plane: every typed rejection fires where promised and
// is counted, queued work survives shutdown, and the batching scheduler
// coalesces exactly the requests it may.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace csaw {
namespace {

const CsrGraph& test_graph() {
  static const CsrGraph g = generate_rmat(1024, 8192, 91);
  return g;
}

std::vector<VertexId> spread_seeds(const CsrGraph& g, std::uint32_t n) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * 131) % g.num_vertices());
  }
  return seeds;
}

SampleRequest walk_request(std::uint32_t n, std::uint32_t length = 6) {
  return SampleRequest::single_seeds("g", AlgorithmId::kBiasedRandomWalk,
                                     length, spread_seeds(test_graph(), n));
}

ServiceConfig quiet_config() {
  ServiceConfig config;
  config.options.num_threads = 1;
  return config;
}

TEST(Service, RejectsUnknownGraph) {
  Service service(quiet_config());
  SampleRequest request = walk_request(2);
  request.graph = "never-registered";
  Submission submission = service.submit(std::move(request));
  EXPECT_EQ(submission.rejected, RejectReason::kUnknownGraph);
  EXPECT_FALSE(submission.accepted());
  EXPECT_EQ(service.stats().rejected_unknown_graph, 1u);
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(Service, RejectsEmptyAndInvalidRequests) {
  Service service(quiet_config());
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  SampleRequest empty = walk_request(2);
  empty.seeds.clear();
  EXPECT_EQ(service.submit(std::move(empty)).rejected,
            RejectReason::kEmptyRequest);

  SampleRequest bad_seed = walk_request(2);
  bad_seed.seeds[1] = {test_graph().num_vertices()};  // one past the end
  EXPECT_EQ(service.submit(std::move(bad_seed)).rejected,
            RejectReason::kInvalidSeed);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_empty, 1u);
  EXPECT_EQ(stats.rejected_invalid_seed, 1u);
  EXPECT_EQ(stats.rejected_total(), 2u);
}

TEST(Service, RejectsOversizedRequests) {
  ServiceConfig config = quiet_config();
  config.max_request_instances = 4;
  config.max_batch_instances = 4;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  EXPECT_EQ(service.submit(walk_request(5)).rejected,
            RejectReason::kOversizedRequest);
  Submission ok = service.submit(walk_request(4));
  EXPECT_TRUE(ok.accepted());
  ok.result.get();
  EXPECT_EQ(service.stats().rejected_oversized, 1u);
}

TEST(Service, RejectsPinnedStreamRangeThatWouldWrap) {
  // A pinned range wrapping past the sentinel would produce
  // non-increasing engine tags and abort the coalesced batch it rides
  // in, failing innocent neighbors — admission must kill it instead.
  Service service(quiet_config());
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  SampleRequest wrapping = walk_request(4);
  wrapping.rng_base = kAutoRngBase - 2;  // room for 2, carries 4
  EXPECT_EQ(service.submit(std::move(wrapping)).rejected,
            RejectReason::kOversizedRequest);

  SampleRequest snug = walk_request(4);
  snug.rng_base = kAutoRngBase - 4;  // exactly fits below the sentinel
  Submission ok = service.submit(std::move(snug));
  ASSERT_TRUE(ok.accepted());
  EXPECT_GT(ok.result.get().sampled_edges(), 0u);
}

TEST(Service, AutoAssignmentSkipsAdmittedPinnedRanges) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  SampleRequest pinned = walk_request(4);
  pinned.rng_base = 10;
  Submission p = service.submit(std::move(pinned));
  EXPECT_EQ(p.rng_base, 10u);

  // The cursor jumped past the pinned range's end: the auto request gets
  // a disjoint Philox stream, not [0, 3).
  Submission autod = service.submit(walk_request(3));
  EXPECT_EQ(autod.rng_base, 14u);

  service.resume();
  p.result.get();
  autod.result.get();
}

TEST(Service, ConcurrentShutdownCallsAreSafe) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));
  Submission queued = service.submit(walk_request(2));

  std::thread other([&] { service.shutdown(); });
  service.shutdown();  // races the other caller; both must return safely
  other.join();
  EXPECT_GT(queued.result.get().sampled_edges(), 0u);
}

TEST(Service, RejectsWhenQueueFull) {
  ServiceConfig config = quiet_config();
  config.max_queue_depth = 2;
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission first = service.submit(walk_request(2));
  Submission second = service.submit(walk_request(2));
  Submission third = service.submit(walk_request(2));
  EXPECT_TRUE(first.accepted());
  EXPECT_TRUE(second.accepted());
  EXPECT_EQ(third.rejected, RejectReason::kQueueFull);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);
  EXPECT_EQ(service.stats().peak_queue_depth, 2u);

  // The bound is on queued requests: once the dispatcher drains them,
  // admission opens again.
  service.resume();
  first.result.get();
  second.result.get();
  service.drain();
  EXPECT_TRUE(service.submit(walk_request(2)).accepted());
}

TEST(Service, ShutdownRejectsNewButDrainsQueued) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission queued = service.submit(walk_request(3));
  ASSERT_TRUE(queued.accepted());
  service.shutdown();  // overrides the pause, drains, then stops

  const RunResult result = queued.result.get();
  EXPECT_GT(result.sampled_edges(), 0u);

  Submission late = service.submit(walk_request(1));
  EXPECT_EQ(late.rejected, RejectReason::kShutdown);
  EXPECT_THROW(service.sample(walk_request(1)), ServiceError);
  EXPECT_EQ(service.stats().rejected_shutdown, 2u);
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(Service, BlockingSampleMatchesPlainSampler) {
  Service service(quiet_config());
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  SampleRequest request = walk_request(8);
  request.rng_base = 0;  // pin the Philox stream range for the comparison
  const RunResult served = service.sample(std::move(request));
  ASSERT_GT(served.sampled_edges(), 0u);

  SamplerOptions options;
  options.num_threads = 1;
  Sampler direct(test_graph(), AlgorithmId::kBiasedRandomWalk, 6, 2, options);
  const RunResult plain =
      direct.run_single_seed(spread_seeds(test_graph(), 8));
  ASSERT_EQ(served.samples.num_instances(), plain.samples.num_instances());
  for (std::uint32_t i = 0; i < plain.samples.num_instances(); ++i) {
    EXPECT_EQ(served.samples.edges(i), plain.samples.edges(i))
        << "instance " << i;
  }
}

TEST(Service, CoalescesCompatibleQueuedRequests) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission a = service.submit(walk_request(3));
  Submission b = service.submit(walk_request(5));
  Submission c = service.submit(walk_request(2));
  service.resume();
  service.drain();

  EXPECT_EQ(a.result.get().samples.num_instances(), 3u);
  EXPECT_EQ(b.result.get().samples.num_instances(), 5u);
  EXPECT_EQ(c.result.get().samples.num_instances(), 2u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 3u);
  EXPECT_EQ(stats.max_batch_requests, 3u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(Service, DoesNotCoalesceIncompatibleRequests) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission walk = service.submit(walk_request(2));
  SampleRequest sampling = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedNeighborSampling, 2,
      spread_seeds(test_graph(), 2));
  Submission tree = service.submit(std::move(sampling));
  service.resume();
  service.drain();

  EXPECT_GT(walk.result.get().sampled_edges(), 0u);
  EXPECT_GT(tree.result.get().sampled_edges(), 0u);
  EXPECT_EQ(service.stats().batches, 2u);
  EXPECT_EQ(service.stats().coalesced_requests, 0u);
}

TEST(Service, OverlappingPinnedStreamsNeverShareABatch) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  SampleRequest first = walk_request(4);
  first.rng_base = 10;
  SampleRequest second = walk_request(4);
  second.rng_base = 12;  // overlaps [10, 14)
  Submission a = service.submit(std::move(first));
  Submission b = service.submit(std::move(second));
  service.resume();
  service.drain();

  EXPECT_GT(a.result.get().sampled_edges(), 0u);
  EXPECT_GT(b.result.get().sampled_edges(), 0u);
  EXPECT_EQ(service.stats().batches, 2u);
}

TEST(Service, BatchInstanceBudgetSplitsBatches) {
  ServiceConfig config = quiet_config();
  config.max_request_instances = 8;
  config.max_batch_instances = 8;
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission a = service.submit(walk_request(6));
  Submission b = service.submit(walk_request(6));  // 12 > 8: next batch
  service.resume();
  service.drain();

  a.result.get();
  b.result.get();
  EXPECT_EQ(service.stats().batches, 2u);
}

TEST(Service, RegistryReportsResidencyAndSharedPartitions) {
  ServiceConfig config = quiet_config();
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));
  EXPECT_THROW(
      service.add_graph("g", std::make_shared<const CsrGraph>(test_graph())),
      CheckError);

  auto listed = service.graphs();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].name, "g");
  EXPECT_EQ(listed[0].bytes, test_graph().bytes());
  EXPECT_TRUE(listed[0].paged);
  EXPECT_FALSE(listed[0].partitions_built);

  const RunResult result = service.sample(walk_request(4));
  EXPECT_GT(result.sampled_edges(), 0u);
  EXPECT_TRUE(result.oom.has_value());
  listed = service.graphs();
  EXPECT_TRUE(listed[0].partitions_built);
}

TEST(Service, SmallGraphStaysResidentUnderDefaultBudget) {
  Service service(quiet_config());
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));
  const auto listed = service.graphs();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_FALSE(listed[0].paged);  // the stand-in fits the 16 GB default
}

TEST(Service, StatsAccumulateServedWork) {
  ServiceConfig config = quiet_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", std::make_shared<const CsrGraph>(test_graph()));

  Submission a = service.submit(walk_request(3));
  Submission b = service.submit(walk_request(3));
  service.resume();
  service.drain();
  const std::uint64_t edges =
      a.result.get().sampled_edges() + b.result.get().sampled_edges();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.sampled_edges, edges);
  EXPECT_GT(stats.sim_seconds, 0.0);
}

}  // namespace
}  // namespace csaw
