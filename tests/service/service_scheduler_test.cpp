// Scheduling policy of the concurrent csaw::Service dispatcher:
// latency-aware batching (a head may wait out ServiceConfig::
// batching_deadline to coalesce late arrivals, but a full batch — or a
// draining shutdown — launches immediately), independent-graph batch
// overlap bounded by max_concurrent_batches, and the fairness pass
// (deficit round robin across tenants plus the tenant_quota in-flight
// bound) that keeps a flooding tenant from stalling everyone else.
// Byte-level guarantees live in service_determinism_test.cpp; this suite
// is about *when* batches launch and *who* gets dispatch capacity.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

const std::shared_ptr<const CsrGraph>& graph_a() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 97));
  return g;
}

const std::shared_ptr<const CsrGraph>& graph_b() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 98));
  return g;
}

std::vector<VertexId> spread_seeds(const CsrGraph& g, std::uint32_t n,
                                   std::uint32_t stride = 131) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * stride) % g.num_vertices());
  }
  return seeds;
}

SampleRequest walk_request(const std::string& graph, std::uint32_t instances,
                           std::uint32_t length,
                           const std::string& tenant = {}) {
  SampleRequest request = SampleRequest::single_seeds(
      graph, AlgorithmId::kBiasedRandomWalk, length,
      spread_seeds(*graph_a(), instances));
  request.tenant = tenant;
  return request;
}

ServiceConfig serial_engine_config() {
  ServiceConfig config;
  config.options.num_threads = 1;
  return config;
}

TEST(ServiceScheduler, DeadlineLaunchesPartialBatch) {
  // A lone request can never fill max_batch_instances: with a deadline
  // configured, the only way it launches (short of shutdown) is the
  // deadline expiring — and the launch is counted as such.
  ServiceConfig config = serial_engine_config();
  config.batching_deadline = 25ms;
  Service service(config);
  service.add_graph("a", graph_a());

  Submission only = service.submit(walk_request("a", 2, 8));
  ASSERT_TRUE(only.accepted());
  EXPECT_GT(only.result.get().sampled_edges(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deadline_launches, 1u);
}

TEST(ServiceScheduler, FullBatchLaunchesBeforeItsDeadline) {
  // Two compatible requests exactly filling max_batch_instances launch
  // immediately — a long deadline must not hold a full batch hostage.
  ServiceConfig config = serial_engine_config();
  config.batching_deadline = 30s;  // a hung test, if the full check broke
  config.max_request_instances = 4;
  config.max_batch_instances = 8;
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());

  Submission first = service.submit(walk_request("a", 4, 8));
  Submission second = service.submit(walk_request("a", 4, 8));
  ASSERT_TRUE(first.accepted() && second.accepted());
  service.resume();
  EXPECT_GT(first.result.get().sampled_edges(), 0u);
  EXPECT_GT(second.result.get().sampled_edges(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 2u);
  EXPECT_EQ(stats.deadline_launches, 0u);
}

TEST(ServiceScheduler, ShutdownDrainsWithoutWaitingOutDeadlines) {
  ServiceConfig config = serial_engine_config();
  config.batching_deadline = 30s;
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());

  Submission queued = service.submit(walk_request("a", 2, 8));
  ASSERT_TRUE(queued.accepted());
  const auto begin = std::chrono::steady_clock::now();
  service.shutdown();  // must not sleep 30s per queued request
  EXPECT_GT(queued.result.get().sampled_edges(), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - begin, 10s);
  EXPECT_EQ(service.stats().deadline_launches, 0u);
}

TEST(ServiceScheduler, IndependentGraphBatchesRunConcurrently) {
  // Two batches on different graphs may be in flight at once; the same
  // graph never overlaps itself. Formation is deterministic (everything
  // queued while paused); the *executing* overlap is asserted loosely —
  // wall-clock overlap is the bench harness's job.
  ServiceConfig config = serial_engine_config();
  config.max_concurrent_batches = 2;
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());
  service.add_graph("b", graph_b());

  Submission on_a = service.submit(walk_request("a", 24, 48));
  Submission on_b = service.submit(walk_request("b", 24, 48));
  ASSERT_TRUE(on_a.accepted() && on_b.accepted());
  service.resume();
  service.drain();

  EXPECT_GT(on_a.result.get().sampled_edges(), 0u);
  EXPECT_GT(on_b.result.get().sampled_edges(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);  // different graphs never coalesce
  EXPECT_EQ(stats.coalesced_requests, 0u);
  // Deterministic: the dispatcher forms both batches (one per idle
  // graph) before any runner can retire the first, so both were
  // in flight simultaneously at the scheduling level.
  EXPECT_EQ(stats.peak_inflight_batches, 2u);
  EXPECT_GE(stats.peak_concurrent_batches, 1u);
  EXPECT_LE(stats.peak_concurrent_batches, 2u);
}

TEST(ServiceScheduler, TenantQuotaBoundsAFloodingTenant) {
  // "noisy" floods two graphs; with tenant_quota covering only one of
  // its requests, its second batch must defer — and "quiet", on a third
  // graph, is dispatched into the freed slot instead of starving behind
  // the flood. The deferral is deterministic: the dispatcher books the
  // first batch's in-flight instances before the same locked scheduling
  // pass evaluates the second request.
  ServiceConfig config = serial_engine_config();
  config.max_concurrent_batches = 2;
  config.tenant_quota = 4;
  config.start_paused = true;
  Service service(config);
  service.add_graph("f1", graph_a());
  service.add_graph("f2", graph_b());
  service.add_graph("v", std::make_shared<const CsrGraph>(
                             generate_rmat(1024, 8192, 99)));

  // ~20ms of host work per noisy batch: the ordering assertions below
  // tolerate two orders of magnitude of scheduler/wake latency.
  Submission noisy1 = service.submit(walk_request("f1", 4, 4096, "noisy"));
  Submission noisy2 = service.submit(walk_request("f2", 4, 4096, "noisy"));
  Submission quiet = service.submit(walk_request("v", 1, 2, "quiet"));
  ASSERT_TRUE(noisy1.accepted() && noisy2.accepted() && quiet.accepted());
  service.resume();

  // The quiet tenant's tiny batch rides the second runner slot while the
  // flood's first (heavy) batch occupies the first; the flood's second
  // request is still quota-deferred at that point.
  EXPECT_GT(quiet.result.get().sampled_edges(), 0u);
  EXPECT_EQ(noisy2.result.wait_for(0ms), std::future_status::timeout)
      << "the flooding tenant overran its quota";

  service.drain();
  EXPECT_GT(noisy1.result.get().sampled_edges(), 0u);
  EXPECT_GT(noisy2.result.get().sampled_edges(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_GE(stats.quota_deferrals, 1u);
  for (const TenantStats& tenant : stats.tenants) {
    if (tenant.tenant == "noisy") {
      EXPECT_EQ(tenant.completed, 2u);
      EXPECT_LE(tenant.peak_inflight_instances, 4u);  // the quota held
    }
    if (tenant.tenant == "quiet") EXPECT_EQ(tenant.completed, 1u);
  }
}

TEST(ServiceScheduler, DeficitRoundRobinRotatesTenants) {
  // One graph, one batch at a time: dispatch order is pure fairness
  // policy. Tenant "bulk" queues three incompatible (non-coalescible)
  // requests before "tiny" queues one; round-robin hands the second
  // batch to "tiny" instead of draining the whole flood first.
  ServiceConfig config = serial_engine_config();
  config.max_concurrent_batches = 1;
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());

  // bulk2/bulk3 carry ~20ms of host work each (distinct lengths keep
  // them non-coalescible), so "bulk3 has not run yet" holds with two
  // orders of magnitude of margin when tiny's future resolves.
  Submission bulk1 = service.submit(walk_request("a", 4, 8, "bulk"));
  Submission bulk2 = service.submit(walk_request("a", 8, 2048, "bulk"));
  Submission bulk3 = service.submit(walk_request("a", 8, 2049, "bulk"));
  Submission tiny = service.submit(walk_request("a", 1, 2, "tiny"));
  ASSERT_TRUE(bulk1.accepted() && bulk2.accepted() && bulk3.accepted() &&
              tiny.accepted());
  service.resume();

  // Batches run strictly one at a time, so when tiny's future resolves,
  // the flood's last batch cannot have run yet — unless fairness failed
  // and tiny was dispatched behind the whole flood.
  EXPECT_GT(tiny.result.get().sampled_edges(), 0u);
  EXPECT_EQ(bulk3.result.wait_for(0ms), std::future_status::timeout)
      << "tiny was starved behind the flood";

  service.drain();
  bulk1.result.get();
  bulk2.result.get();
  bulk3.result.get();
  EXPECT_EQ(service.stats().batches, 4u);
}

TEST(ServiceScheduler, EdgeWeightedFairnessLetsCheapTenantsOvertake) {
  // The DRR cost is estimated sampled edges, not instance count (PR 9):
  // with *equal* instance counts, a tenant flooding 8x2048-step walks
  // (16384 edges, two quanta at the default 8192-edge quantum) must not
  // dispatch 1:1 against a tenant of 8x2-step walks (16 edges, funded
  // every turn). Under the old instance-denominated quantum both tenants
  // cost the same and strictly alternate; edge weighting lets all three
  // cheap requests dispatch before the flood's second request.
  ServiceConfig config = serial_engine_config();
  config.max_concurrent_batches = 1;
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());

  // Distinct lengths keep requests non-coalescible; "heavy" submits
  // first, so it also leads the fairness ring.
  Submission heavy1 = service.submit(walk_request("a", 8, 2048, "heavy"));
  Submission heavy2 = service.submit(walk_request("a", 8, 2049, "heavy"));
  Submission heavy3 = service.submit(walk_request("a", 8, 2050, "heavy"));
  Submission light1 = service.submit(walk_request("a", 8, 2, "light"));
  Submission light2 = service.submit(walk_request("a", 8, 3, "light"));
  Submission light3 = service.submit(walk_request("a", 8, 4, "light"));
  ASSERT_TRUE(heavy1.accepted() && heavy2.accepted() && heavy3.accepted());
  ASSERT_TRUE(light1.accepted() && light2.accepted() && light3.accepted());
  service.resume();

  // Serialized batches: when the last cheap request resolves, the
  // flood's second request cannot have run yet (its batch alone carries
  // ~20ms of host work — two orders of magnitude of margin).
  EXPECT_GT(light3.result.get().sampled_edges(), 0u);
  EXPECT_EQ(heavy2.result.wait_for(0ms), std::future_status::timeout)
      << "cheap tenant paid instance-denominated cost";

  service.drain();
  heavy1.result.get();
  heavy2.result.get();
  heavy3.result.get();
  light1.result.get();
  light2.result.get();
  EXPECT_EQ(service.stats().batches, 6u);
}

TEST(ServiceScheduler, PerTenantStatsAccumulate) {
  ServiceConfig config = serial_engine_config();
  config.start_paused = true;
  Service service(config);
  service.add_graph("a", graph_a());

  Submission alpha1 = service.submit(walk_request("a", 3, 8, "alpha"));
  Submission alpha2 = service.submit(walk_request("a", 2, 8, "alpha"));
  Submission beta = service.submit(walk_request("a", 4, 8, "beta"));
  ASSERT_TRUE(alpha1.accepted() && alpha2.accepted() && beta.accepted());
  service.resume();
  service.drain();

  const std::uint64_t alpha_edges = alpha1.result.get().sampled_edges() +
                                    alpha2.result.get().sampled_edges();
  const std::uint64_t beta_edges = beta.result.get().sampled_edges();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);  // compatible across tenants: one run
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "alpha");
  EXPECT_EQ(stats.tenants[0].accepted, 2u);
  EXPECT_EQ(stats.tenants[0].completed, 2u);
  EXPECT_EQ(stats.tenants[0].sampled_edges, alpha_edges);
  EXPECT_EQ(stats.tenants[0].peak_inflight_instances, 5u);
  EXPECT_EQ(stats.tenants[1].tenant, "beta");
  EXPECT_EQ(stats.tenants[1].completed, 1u);
  EXPECT_EQ(stats.tenants[1].sampled_edges, beta_edges);
  EXPECT_EQ(stats.tenants[1].failed + stats.tenants[0].failed, 0u);
}

}  // namespace
}  // namespace csaw
