// Streaming concurrency soak: 6 client threads drive a mix of streamed
// and buffered requests at one live service — streaming consumers run at
// different speeds (one deliberately slow, parking its producers on the
// chunk budget), some streams are cancelled or abandoned mid-drain, and
// buffered traffic rides the same batches throughout. CI runs this under
// ThreadSanitizer with CSAW_THREADS=4 (the stream-soak job), turning
// races between the completion bridge, parked engine workers, stream
// consumers and the dispatcher into hard failures. Assertions are about
// accounting closure and the backpressure bound; bytes are owned by
// service_stream_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kClients = 6;
constexpr std::uint32_t kRequestsPerClient = 20;  // 6 x 20 = 120 total
constexpr std::uint32_t kBudget = 2;

TEST(ServiceStreamSoak, MixedStreamingAndBufferedClients) {
  ServiceConfig config;
  config.max_queue_depth = 64;
  config.max_concurrent_batches = 3;
  config.batching_deadline = std::chrono::microseconds(200);
  config.stream_chunk_budget = kBudget;
  Service service(config);
  const auto small =
      std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95));
  const auto large =
      std::make_shared<const CsrGraph>(generate_rmat(2048, 16384, 96));
  service.add_graph("small", small);
  service.add_graph("large", large);

  std::atomic<std::uint64_t> buffered_done{0};
  std::atomic<std::uint64_t> streams_ok{0};
  std::atomic<std::uint64_t> streams_failed{0};
  std::atomic<std::uint64_t> streams_abandoned{0};
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> streamed_chunks{0};
  std::atomic<bool> budget_held{true};

  const auto client = [&](std::uint32_t c) {
    // Client 0 is the deliberately slow consumer: it sleeps between
    // next() calls, parking its batches' producers on the chunk budget
    // while other clients' traffic keeps arriving.
    const bool slow = c == 0;
    std::vector<std::future<RunResult>> in_flight;
    for (std::uint32_t r = 0; r < kRequestsPerClient; ++r) {
      SampleRequest request;
      const bool use_large = r % 3 == 0;
      request.graph = use_large ? "large" : "small";
      request.depth_or_length = 4 + (r % 3);
      const VertexId num_vertices =
          (use_large ? large : small)->num_vertices();
      const std::uint32_t instances = 2 + (r % 5);
      for (std::uint32_t i = 0; i < instances; ++i) {
        request.seeds.push_back(
            {static_cast<VertexId>((c * 131 + r * 17 + i) % num_vertices)});
      }
      request.tenant = "client-" + std::to_string(c % 3);

      if (r % 2 == 0) {
        // Buffered rider on the same batches.
        Submission submission = service.submit(std::move(request));
        ASSERT_TRUE(submission.accepted());
        in_flight.push_back(std::move(submission.result));
        continue;
      }

      CancelSource canceller;
      const bool cancel_midway = r % 8 == 5;
      const bool abandon_midway = r % 8 == 7;
      if (cancel_midway) request.cancel = canceller.token();
      StreamSubmission streaming =
          service.submit_streaming(std::move(request));
      ASSERT_TRUE(streaming.accepted());
      std::uint64_t drained = 0;
      std::uint64_t drained_edges = 0;
      try {
        while (true) {
          if (slow) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          auto chunk = streaming.stream->next();
          if (!chunk.has_value()) break;
          ++drained;
          drained_edges += chunk->edges.size();
          if (cancel_midway && drained == 1) canceller.cancel();
          if (abandon_midway && drained == 1) {
            streaming.stream->cancel();
            ++streams_abandoned;
            break;
          }
        }
        if (!abandon_midway) {
          ++streams_ok;
          // Only a stream that retired kOk books its edges (a cancelled
          // request's partial rows are charged to nobody), so only these
          // drains are comparable against ServiceStats::sampled_edges.
          edges += drained_edges;
        }
      } catch (const RequestError& error) {
        EXPECT_EQ(error.outcome(), RequestOutcome::kCancelled);
        ++streams_failed;
      }
      streamed_chunks += drained;
      if (streaming.stream->peak_queued() > kBudget) {
        budget_held.store(false);
      }
    }
    for (auto& future : in_flight) {
      edges += future.get().sampled_edges();
      ++buffered_done;
    }
  };

  std::atomic<bool> stop_observer{false};
  std::thread observer([&] {
    while (!stop_observer.load()) {
      (void)service.stats();
      (void)service.health();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& t : clients) t.join();
  stop_observer.store(true);
  observer.join();
  service.shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, stats.submitted);
  // Every request retired exactly once. An abandoned stream races its
  // own batch: it usually retires cancelled, but a fast batch may finish
  // kOk before the abandon lands — so the split between completed and
  // failed is bounded, while their sum closes exactly.
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
  EXPECT_GE(stats.completed, buffered_done.load() + streams_ok.load());
  EXPECT_LE(stats.failed, streams_failed.load() + streams_abandoned.load());
  EXPECT_EQ(stats.cancelled, stats.failed);  // only cancel-shaped faults
  EXPECT_GT(streams_ok.load(), 0u);
  EXPECT_GT(streams_failed.load(), 0u);
  EXPECT_GT(streams_abandoned.load(), 0u);
  EXPECT_GT(streamed_chunks.load(), 0u);
  // The backpressure bound held on every stream, including the slow
  // consumer's parked ones.
  EXPECT_TRUE(budget_held.load());
  // Streamed edges are booked exactly like buffered ones: every edge a
  // kOk stream's consumer drained is in the service total (abandoned-
  // but-completed streams book chunks nobody drained, so >=).
  EXPECT_GE(stats.sampled_edges, edges.load());
  EXPECT_GT(stats.batches, 0u);
}

}  // namespace
}  // namespace csaw
