// The service's headline guarantee: a request's samples are byte-identical
// whether it ran alone or coalesced into any batch, across all four
// execution modes and at any host thread count. Each instance draws from
// the Philox stream addressed by its request's rng_base — carried through
// the engines as an explicit per-instance tag — so neither batch
// composition nor the executing schedule can reach the bytes. The solo
// reference is a plain csaw::Sampler run at the same offset, which also
// proves the service adds nothing to the facade's own contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kWidths[] = {1, 2, 7};
constexpr std::uint32_t kWalkLength = 8;
constexpr std::uint32_t kInstances = 10;
constexpr std::uint32_t kBase = 64;  // the probed request's stream range

const std::shared_ptr<const CsrGraph>& shared_graph() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 93));
  return g;
}

/// Independent graph for the concurrent-batch scenario: its batch may
/// execute simultaneously with the probe's on the shared pool.
const std::shared_ptr<const CsrGraph>& other_graph() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 94));
  return g;
}

std::vector<VertexId> spread_seeds(std::uint32_t n, std::uint32_t stride) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] =
        static_cast<VertexId>((i * stride) % shared_graph()->num_vertices());
  }
  return seeds;
}

SamplerOptions mode_options(ExecutionMode mode, std::uint32_t width) {
  SamplerOptions options;
  options.mode = mode;
  options.num_threads = width;
  if (mode == ExecutionMode::kMultiDevice) options.num_devices = 2;
  if (mode == ExecutionMode::kOutOfMemory) {
    options.memory_assumption = MemoryAssumption::kExceeds;
  }
  return options;
}

SampleRequest probe_request() {
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, kWalkLength,
      spread_seeds(kInstances, 131));
  request.rng_base = kBase;
  return request;
}

/// A compatible decoy whose stream range [base, base+n) stays clear of
/// the probe's.
SampleRequest decoy_request(std::uint32_t base, std::uint32_t n,
                            std::uint32_t stride) {
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, kWalkLength,
      spread_seeds(n, stride));
  request.rng_base = base;
  return request;
}

void expect_same_samples(const SampleStore& a, const SampleStore& b,
                         const std::string& label) {
  ASSERT_EQ(a.num_instances(), b.num_instances()) << label;
  for (std::uint32_t i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.edges(i), b.edges(i)) << label << ", instance " << i;
  }
}

void expect_solo_coalesced_equivalence(ExecutionMode mode) {
  // The facade reference: the probe's exact bytes, straight through
  // csaw::Sampler at the probe's stream offset, serial host.
  SamplerOptions reference_options = mode_options(mode, /*width=*/1);
  reference_options.instance_id_offset = kBase;
  Sampler reference(*shared_graph(),
                    make_algorithm(AlgorithmId::kBiasedRandomWalk,
                                   kWalkLength),
                    reference_options);
  const RunResult expected =
      reference.run_single_seed(spread_seeds(kInstances, 131));
  ASSERT_GT(expected.sampled_edges(), 0u);

  for (const std::uint32_t width : kWidths) {
    const std::string label =
        to_string(mode) + " @ " + std::to_string(width) + " threads";

    // Solo: the probe is the only request the service ever sees.
    {
      ServiceConfig config;
      config.options = mode_options(mode, width);
      config.start_paused = true;
      Service service(config);
      service.add_graph("g", shared_graph());
      Submission probe = service.submit(probe_request());
      ASSERT_TRUE(probe.accepted()) << label;
      service.resume();
      const RunResult solo = probe.result.get();
      expect_same_samples(solo.samples, expected.samples, label + ", solo");
      EXPECT_EQ(service.stats().batches, 1u) << label;
    }

    // Coalesced: the probe shares its batch with decoys on both sides of
    // its stream range, queued in an order that interleaves them.
    {
      ServiceConfig config;
      config.options = mode_options(mode, width);
      config.start_paused = true;
      Service service(config);
      service.add_graph("g", shared_graph());
      Submission low = service.submit(decoy_request(0, 7, 37));
      Submission probe = service.submit(probe_request());
      Submission high = service.submit(decoy_request(200, 5, 211));
      ASSERT_TRUE(low.accepted() && probe.accepted() && high.accepted())
          << label;
      service.resume();
      service.drain();

      const RunResult coalesced = probe.result.get();
      expect_same_samples(coalesced.samples, expected.samples,
                          label + ", coalesced");
      // All three really shared one engine run — otherwise this test
      // proves nothing.
      const ServiceStats stats = service.stats();
      EXPECT_EQ(stats.batches, 1u) << label;
      EXPECT_EQ(stats.coalesced_requests, 3u) << label;

      // The decoys are requests of their own and get their own streams'
      // bytes back: the equivalence is per request, not just for the
      // probed one.
      SamplerOptions low_options = mode_options(mode, /*width=*/1);
      low_options.instance_id_offset = 0;
      Sampler low_reference(*shared_graph(),
                            make_algorithm(AlgorithmId::kBiasedRandomWalk,
                                           kWalkLength),
                            low_options);
      const RunResult low_expected =
          low_reference.run_single_seed(spread_seeds(7, 37));
      expect_same_samples(low.result.get().samples, low_expected.samples,
                          label + ", low decoy");
    }

    // Concurrent: the probe's batch shares the pool with a simultaneous
    // independent-graph batch from another tenant — two engine runs,
    // two batch-runner threads, one executor. The scheduler may overlap
    // them in any way; the probe's bytes must not care.
    {
      ServiceConfig config;
      config.options = mode_options(mode, width);
      config.max_concurrent_batches = 2;
      config.start_paused = true;
      Service service(config);
      service.add_graph("g", shared_graph());
      service.add_graph("other", other_graph());
      SampleRequest neighbor = SampleRequest::single_seeds(
          "other", AlgorithmId::kBiasedRandomWalk, 4 * kWalkLength,
          spread_seeds(24, 59));
      neighbor.tenant = "other-tenant";
      Submission busy = service.submit(std::move(neighbor));
      Submission probe = service.submit(probe_request());
      ASSERT_TRUE(busy.accepted() && probe.accepted()) << label;
      service.resume();
      service.drain();

      expect_same_samples(probe.result.get().samples, expected.samples,
                          label + ", concurrent");
      ASSERT_GT(busy.result.get().sampled_edges(), 0u) << label;
      const ServiceStats stats = service.stats();
      EXPECT_EQ(stats.batches, 2u) << label;  // distinct graphs: no merge
    }
  }
}

TEST(ServiceDeterminism, InMemory) {
  expect_solo_coalesced_equivalence(ExecutionMode::kInMemory);
}

TEST(ServiceDeterminism, OutOfMemory) {
  expect_solo_coalesced_equivalence(ExecutionMode::kOutOfMemory);
}

TEST(ServiceDeterminism, MultiDevice) {
  expect_solo_coalesced_equivalence(ExecutionMode::kMultiDevice);
}

TEST(ServiceDeterminism, Auto) {
  expect_solo_coalesced_equivalence(ExecutionMode::kAuto);
}

TEST(ServiceDeterminism, BatchCompositionIsInvisible) {
  // Same probe, three different batch shapes (alone, one neighbor, many
  // neighbors of varying size): one set of bytes.
  const SamplerOptions options = mode_options(ExecutionMode::kAuto, 2);
  std::vector<SampleStore> runs;
  for (const std::uint32_t decoys : {0u, 1u, 4u}) {
    ServiceConfig config;
    config.options = options;
    config.start_paused = true;
    Service service(config);
    service.add_graph("g", shared_graph());
    Submission probe = service.submit(probe_request());
    std::vector<Submission> extra;
    for (std::uint32_t d = 0; d < decoys; ++d) {
      extra.push_back(
          service.submit(decoy_request(200 + 16 * d, 3 + d, 17 + d)));
    }
    service.resume();
    service.drain();
    runs.push_back(probe.result.get().samples);
    for (Submission& s : extra) s.result.get();
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    expect_same_samples(runs[r], runs[0],
                        "batch shape " + std::to_string(r));
  }
}

}  // namespace
}  // namespace csaw
