// Fault-injection soak for csaw::Service (PR 7): 8 client threads fire
// 200 mixed requests at two *paged* graphs while a deterministic
// injector fails ~5% of partition-copy sites (absorbed by a 2-attempt
// retry budget), two scripted sites fail terminally, some requests
// carry deadlines (a mix of generous and hopeless), and some are
// cancelled from the client thread at random points in their life. CI
// runs this under ThreadSanitizer with CSAW_THREADS=4 (the fault-soak
// job). The assertions are accounting closure: every accepted future
// resolves (value or typed RequestError), the failure breakdown sums
// exactly, the tenant slice matches the global counters, and the
// service drains clean — no pin, no timer, no queue entry left behind.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "oom/cache/fault_injector.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint32_t kRequestsPerClient = 25;  // 8 x 25 = 200 total

TEST(ServiceFaultSoak, FaultyPagedTrafficClosesItsBooks) {
  ServiceConfig config;
  config.max_queue_depth = 256;
  config.max_concurrent_batches = 2;
  config.batching_deadline = std::chrono::microseconds(200);
  config.options.memory_assumption = MemoryAssumption::kExceeds;  // page all
  auto injector = std::make_shared<TransferFaultInjector>([] {
    TransferFaultInjector::Config c;
    c.seed = 7;
    c.fail_rate = 0.05;
    c.fail_times = 1;  // absorbed by the 2-attempt budget below
    c.slow_rate = 0.05;
    return c;
  }());
  // Two scripted terminal sites (deeper than the retry budget): whichever
  // batches open them fail typed, everyone else retries through.
  injector->fail_partition(0, 5);
  injector->fail_partition(1, 5);
  config.options.transfer_faults = injector;
  config.options.transfer_retry_limit = 2;
  Service service(config);
  const auto small =
      std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95));
  const auto large =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 96));
  service.add_graph("small", small);
  service.add_graph("large", large);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> transfer_failed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> edges{0};

  struct InFlight {
    std::future<RunResult> future;
    // Keeps the client's cancel source alive until the future resolves.
    std::shared_ptr<CancelSource> source;
  };

  const auto resolve = [&](InFlight& flight) {
    try {
      edges += flight.future.get().sampled_edges();
      ++ok;
    } catch (const RequestError& e) {
      switch (e.outcome()) {
        case RequestOutcome::kCancelled:
          ++cancelled;
          break;
        case RequestOutcome::kDeadlineExceeded:
          ++deadline_exceeded;
          break;
        case RequestOutcome::kTransferFailed:
          ++transfer_failed;
          break;
        default:
          FAIL() << "unexpected outcome: " << to_string(e.outcome());
      }
    }
  };

  const auto client = [&](std::uint32_t c) {
    std::vector<InFlight> in_flight;
    for (std::uint32_t r = 0; r < kRequestsPerClient; ++r) {
      SampleRequest request;
      const bool use_large = r % 3 == 0;
      request.graph = use_large ? "large" : "small";
      request.algorithm = AlgorithmId::kBiasedRandomWalk;
      request.depth_or_length = 4 + (r % 3);
      request.tenant = "client-" + std::to_string(c % 3);  // 3 tenants
      const VertexId num_vertices =
          (use_large ? large : small)->num_vertices();
      const std::uint32_t instances = 1 + (r % 3);
      for (std::uint32_t i = 0; i < instances; ++i) {
        request.seeds.push_back(
            {static_cast<VertexId>((c * 131 + r * 17 + i) % num_vertices)});
      }
      std::shared_ptr<CancelSource> source;
      if (r % 6 == 5) {
        source = std::make_shared<CancelSource>();
        request.cancel = source->token();
      }
      if (r % 5 == 4) {
        // A mix of hopeless and generous deadlines; either may land
        // either way under load — closure, not placement, is asserted.
        request.deadline = std::chrono::steady_clock::now() +
                           (r % 2 == 0 ? std::chrono::milliseconds(50)
                                       : std::chrono::microseconds(200));
      }
      Submission submission = service.submit(std::move(request));
      if (!submission.accepted()) {
        // Only a deadline that expired between the clock read and
        // admission can reject here.
        EXPECT_EQ(submission.rejected, RejectReason::kDeadlineExpired);
        ++rejected;
        continue;
      }
      in_flight.push_back({std::move(submission.result), source});
      if (source != nullptr) {
        // Fired from the client thread while the request is queued,
        // forming, or mid-engine-run — whichever the race picks.
        source->cancel();
      }
      // Resolve a few early so queue pressure and waiting interleave.
      if (in_flight.size() >= 4) {
        resolve(in_flight.front());
        in_flight.erase(in_flight.begin());
      }
    }
    for (auto& flight : in_flight) resolve(flight);
  };

  std::atomic<bool> stop_observer{false};
  std::thread observer([&] {
    // Concurrent control-plane reads while traffic (and faults) flow.
    while (!stop_observer.load()) {
      (void)service.stats();
      (void)service.health();
      (void)service.graphs();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& t : clients) t.join();
  stop_observer.store(true);
  observer.join();
  service.shutdown();

  // Every submitted request is accounted for exactly once: accepted
  // requests resolved to a value or a typed error, the rest rejected.
  const std::uint64_t failed_local =
      cancelled.load() + deadline_exceeded.load() + transfer_failed.load();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, ok.load() + failed_local);
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.failed, failed_local);
  EXPECT_EQ(stats.cancelled, cancelled.load());
  EXPECT_EQ(stats.deadline_exceeded, deadline_exceeded.load());
  EXPECT_EQ(stats.transfer_failed, transfer_failed.load());
  EXPECT_EQ(stats.internal_errors, 0u);
  EXPECT_EQ(stats.rejected_total(), rejected.load());
  EXPECT_EQ(stats.rejected_deadline_expired, rejected.load());
  EXPECT_EQ(stats.sampled_edges, edges.load());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.sampled_edges, 0u);
  // The random 5% sites plus the scripted ones really were exercised.
  EXPECT_GT(injector->attempts_seen(), 0u);

  // The tenant slice closes over the totals, including the breakdown.
  std::uint64_t tenant_accepted = 0;
  std::uint64_t tenant_completed = 0;
  std::uint64_t tenant_failed = 0;
  std::uint64_t tenant_edges = 0;
  for (const TenantStats& tenant : stats.tenants) {
    tenant_accepted += tenant.accepted;
    tenant_completed += tenant.completed;
    tenant_failed += tenant.failed;
    tenant_edges += tenant.sampled_edges;
    EXPECT_EQ(tenant.failed, tenant.cancelled + tenant.deadline_exceeded +
                                 tenant.transfer_failed +
                                 tenant.internal_errors)
        << tenant.tenant;
  }
  EXPECT_EQ(tenant_accepted, stats.accepted);
  EXPECT_EQ(tenant_completed, stats.completed);
  EXPECT_EQ(tenant_failed, stats.failed);
  EXPECT_EQ(tenant_edges, stats.sampled_edges);

  // Drained clean: nothing queued, in flight, or armed — and the health
  // window saw every retired request (200 < the default window).
  const ServiceHealth health = service.health();
  EXPECT_FALSE(health.accepting);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_EQ(health.inflight_batches, 0u);
  EXPECT_EQ(health.executing_batches, 0u);
  EXPECT_EQ(health.timed_requests, 0u);
  EXPECT_EQ(health.window, stats.accepted);
  EXPECT_EQ(health.recent_failures, stats.failed);
}

}  // namespace
}  // namespace csaw
