// Telemetry concurrency soak (PR 9): 6 client threads fire mixed
// buffered + streaming traffic at a service with a live TraceRecorder
// while a poller thread renders metrics_text() and health() — CI runs
// this under ThreadSanitizer with CSAW_THREADS=4 (the telemetry-soak
// job), so races between the recorder's append path, the always-on
// histograms and the exposition snapshots become hard failures. The
// emitted trace must balance (every span begun ends exactly once), and
// when CSAW_TRACE_OUT is set the trace JSON is written there for the
// tools/trace_check.py CI step.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"
#include "telemetry/trace.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kClients = 6;
constexpr std::uint32_t kRequestsPerClient = 20;

TEST(ServiceTelemetrySoak, TracedMixedTrafficBalances) {
  ServiceConfig config;
  config.max_queue_depth = 64;
  config.max_concurrent_batches = 3;
  config.batching_deadline = std::chrono::microseconds(200);
  config.trace = std::make_shared<telemetry::TraceRecorder>();
  Service service(config);
  const auto small =
      std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95));
  const auto large =
      std::make_shared<const CsrGraph>(generate_rmat(2048, 16384, 96));
  service.add_graph("small", small);
  service.add_graph("large", large);

  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> streamed_chunks{0};

  const auto client = [&](std::uint32_t c) {
    for (std::uint32_t r = 0; r < kRequestsPerClient; ++r) {
      SampleRequest request;
      const bool use_large = r % 3 == 0;
      request.graph = use_large ? "large" : "small";
      request.algorithm = (r % 2 == 0) ? AlgorithmId::kBiasedRandomWalk
                                       : AlgorithmId::kBiasedNeighborSampling;
      request.depth_or_length = 4 + (r % 3);
      request.tenant = "client-" + std::to_string(c);
      const VertexId num_vertices =
          (use_large ? large : small)->num_vertices();
      const std::uint32_t instances = 2 + (r % 3);
      for (std::uint32_t i = 0; i < instances; ++i) {
        request.seeds.push_back(
            {static_cast<VertexId>((c * 131 + r * 17 + i) % num_vertices)});
      }
      if (r % 4 == 0) {
        StreamSubmission submission =
            service.submit_streaming(std::move(request));
        ASSERT_TRUE(submission.accepted());
        while (submission.stream->next().has_value()) {
          streamed_chunks.fetch_add(1, std::memory_order_relaxed);
        }
        resolved.fetch_add(1, std::memory_order_relaxed);
      } else {
        Submission submission = service.submit(std::move(request));
        ASSERT_TRUE(submission.accepted());
        submission.result.get();
        resolved.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = service.metrics_text();
      EXPECT_NE(text.find("csaw_requests_submitted_total"),
                std::string::npos);
      (void)service.health();
      (void)config.trace->event_count();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& thread : clients) thread.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  service.drain();
  service.shutdown();

  EXPECT_EQ(resolved.load(), kClients * kRequestsPerClient);
  EXPECT_GT(streamed_chunks.load(), 0u);

  // Every span begun ended exactly once, and sequence numbers are dense
  // — the invariant every nesting assertion (and trace_check.py) rests
  // on, under full concurrency.
  const std::vector<telemetry::TraceEvent> events = config.trace->snapshot();
  std::map<std::uint64_t, int> open;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    if (events[i].phase == telemetry::TracePhase::kBegin) {
      EXPECT_EQ(open[events[i].id], 0) << "span id reused while open";
      open[events[i].id] += 1;
    } else if (events[i].phase == telemetry::TracePhase::kEnd) {
      EXPECT_EQ(open[events[i].id], 1) << "end without begin";
      open[events[i].id] -= 1;
    }
  }
  for (const auto& [id, count] : open) {
    EXPECT_EQ(count, 0) << "span " << id << " never ended";
  }

  // One request span per accepted request; one batch span per batch.
  const ServiceStats stats = service.stats();
  std::uint64_t request_begins = 0;
  std::uint64_t batch_begins = 0;
  for (const auto& event : events) {
    if (event.phase != telemetry::TracePhase::kBegin) continue;
    if (event.name == "request") ++request_begins;
    if (event.name == "batch") ++batch_begins;
  }
  EXPECT_EQ(request_begins, stats.accepted);
  EXPECT_EQ(batch_begins, stats.batches);

  // CI feeds the emitted trace to tools/trace_check.py.
  if (const char* out = std::getenv("CSAW_TRACE_OUT")) {
    std::ofstream file(out);
    ASSERT_TRUE(file.good()) << "cannot write " << out;
    file << config.trace->json();
  }
}

}  // namespace
}  // namespace csaw
