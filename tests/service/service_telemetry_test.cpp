// The unified telemetry layer on the serving tier (PR 9): the golden
// metrics_text() exposition (pinned byte-for-byte on an idle service),
// the always-on latency histograms, the health() outcome rates, and the
// per-request trace: request/queue/batch/chain spans nest by global
// sequence number, transfer spans on a paged batch wrap their retry
// instants, and stream_chunk instants ride inside the batch span.
// Zero-cost gating (byte-identical simulated metrics with tracing off)
// is enforced by the bench trajectory, not here.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "oom/cache/fault_injector.hpp"
#include "oom/partitioned_graph.hpp"
#include "service/service.hpp"
#include "telemetry/trace.hpp"

namespace csaw {
namespace {

using telemetry::TraceEvent;
using telemetry::TracePhase;

const std::shared_ptr<const CsrGraph>& small_graph() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 97));
  return g;
}

ServiceConfig serial_config() {
  ServiceConfig config;
  config.options.num_threads = 1;
  return config;
}

SampleRequest walk_request(std::uint32_t instances, std::uint32_t length,
                           const std::string& tenant = {}) {
  std::vector<VertexId> seeds(instances);
  for (std::uint32_t i = 0; i < instances; ++i) {
    seeds[i] = static_cast<VertexId>((i * 131) % small_graph()->num_vertices());
  }
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, length, seeds);
  request.tenant = tenant;
  return request;
}

/// Arg lookup on a trace event; empty when absent.
std::string arg(const TraceEvent& event, const std::string& key) {
  for (const auto& [k, v] : event.args) {
    if (k == key) return v;
  }
  return {};
}

/// The [begin.seq, end.seq] window of the unique span with `name` (and,
/// when given, the matching arg); fails the test when absent.
struct SpanWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};
std::optional<SpanWindow> span_window(const std::vector<TraceEvent>& events,
                                      const std::string& name,
                                      std::uint64_t id) {
  SpanWindow window;
  bool found_begin = false;
  bool found_end = false;
  for (const TraceEvent& event : events) {
    if (event.name != name || event.id != id) continue;
    if (event.phase == TracePhase::kBegin) {
      window.begin = event.seq;
      found_begin = true;
    } else if (event.phase == TracePhase::kEnd) {
      window.end = event.seq;
      found_end = true;
    }
  }
  if (!found_begin || !found_end) return std::nullopt;
  return window;
}

TEST(ServiceTelemetry, IdleExpositionMatchesGoldenFile) {
  // Pins the whole exposition format — family order, label order, bucket
  // boundaries, HELP text — on a service that has done nothing (host-time
  // observations would make any other state nondeterministic). Regenerate
  // by writing metrics_text() of an idle serial service over the golden
  // file when the catalog deliberately changes.
  std::ifstream golden(std::string(CSAW_SOURCE_DIR) +
                       "/tests/telemetry/golden_idle_metrics.txt");
  ASSERT_TRUE(golden.good()) << "golden file missing";
  std::stringstream contents;
  contents << golden.rdbuf();

  Service service(serial_config());
  EXPECT_EQ(service.metrics_text(), contents.str());
}

TEST(ServiceTelemetry, HistogramsObserveServedTraffic) {
  Service service(serial_config());
  service.add_graph("g", small_graph());
  for (int r = 0; r < 3; ++r) {
    Submission submission = service.submit(walk_request(4, 8));
    ASSERT_TRUE(submission.accepted());
    submission.result.get();
  }

  const telemetry::HistogramSnapshot queue_wait =
      service.histogram("csaw_request_queue_wait_seconds");
  const telemetry::HistogramSnapshot inflight =
      service.histogram("csaw_request_inflight_seconds");
  const telemetry::HistogramSnapshot inflight_sim =
      service.histogram("csaw_request_inflight_sim_seconds");
  const telemetry::HistogramSnapshot batch_sim =
      service.histogram("csaw_batch_sim_seconds");
  EXPECT_EQ(queue_wait.count, 3u);
  EXPECT_EQ(inflight.count, 3u);
  EXPECT_EQ(inflight_sim.count, 3u);
  EXPECT_GE(batch_sim.count, 1u);
  EXPECT_GT(inflight.sum, 0.0);
  EXPECT_GT(inflight_sim.sum, 0.0);  // simulated makespans are never 0
  EXPECT_TRUE(service.histogram("no_such_metric").bounds.empty());

  // The text exposition carries the same distributions.
  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("csaw_request_queue_wait_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("csaw_requests_accepted_total 3"), std::string::npos);
  EXPECT_NE(text.find("csaw_request_outcomes_total{outcome=\"ok\"} 3"),
            std::string::npos);
}

TEST(ServiceTelemetry, HealthReportsOutcomeRates) {
  Service service(serial_config());
  service.add_graph("g", small_graph());
  service.sample(walk_request(2, 8));

  // One cancelled request: cancel before resume so it dies queued.
  CancelSource cancel;
  ServiceConfig config = serial_config();
  config.start_paused = true;
  Service paused(config);
  paused.add_graph("g", small_graph());
  SampleRequest request = walk_request(2, 8);
  request.cancel = cancel.token();
  Submission doomed = paused.submit(std::move(request));
  ASSERT_TRUE(doomed.accepted());
  cancel.cancel(CancelReason::kRequested);
  paused.resume();
  paused.drain();
  EXPECT_THROW(doomed.result.get(), RequestError);

  const ServiceHealth ok_health = service.health();
  EXPECT_EQ(ok_health.window, 1u);
  EXPECT_EQ(ok_health.recent_ok, 1u);
  EXPECT_DOUBLE_EQ(ok_health.ok_rate, 1.0);
  EXPECT_DOUBLE_EQ(ok_health.cancelled_rate, 0.0);

  const ServiceHealth cancelled_health = paused.health();
  EXPECT_EQ(cancelled_health.window, 1u);
  EXPECT_EQ(cancelled_health.recent_cancelled, 1u);
  EXPECT_EQ(cancelled_health.recent_failures, 1u);
  EXPECT_DOUBLE_EQ(cancelled_health.cancelled_rate, 1.0);
  EXPECT_DOUBLE_EQ(cancelled_health.ok_rate, 0.0);
}

TEST(ServiceTelemetry, EmptyHealthWindowHasZeroRates) {
  Service service(serial_config());
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.window, 0u);
  EXPECT_DOUBLE_EQ(health.ok_rate, 0.0);
  EXPECT_DOUBLE_EQ(health.cancelled_rate + health.deadline_rate +
                       health.transfer_failed_rate + health.internal_rate,
                   0.0);
}

TEST(ServiceTelemetry, TraceNestsChainSpansInsideBatchSpans) {
  ServiceConfig config = serial_config();
  config.trace = std::make_shared<telemetry::TraceRecorder>();
  Service service(config);
  service.add_graph("g", small_graph());
  service.sample(walk_request(3, 8));
  // The future resolves before the batch span closes; drain() waits for
  // the runner to retire the batch (which happens after the end event).
  service.drain();

  const std::vector<TraceEvent> events = config.trace->snapshot();
  ASSERT_FALSE(events.empty());

  // Exactly one batch span; find its seq window by id.
  std::uint64_t batch_id_arg = 0;
  std::optional<SpanWindow> batch;
  for (const TraceEvent& event : events) {
    if (event.name == "batch" && event.phase == TracePhase::kBegin) {
      batch = span_window(events, "batch", event.id);
      batch_id_arg = std::stoull(arg(event, "batch"));
    }
  }
  ASSERT_TRUE(batch.has_value());
  EXPECT_LT(batch->begin, batch->end);

  // Every chain span (one per instance) nests inside the batch span and
  // carries the batch attribution.
  std::size_t chains = 0;
  for (const TraceEvent& event : events) {
    if (event.name != "chain") continue;
    EXPECT_GT(event.seq, batch->begin);
    EXPECT_LT(event.seq, batch->end);
    if (event.phase == TracePhase::kBegin) {
      ++chains;
      EXPECT_EQ(arg(event, "batch"), std::to_string(batch_id_arg));
    }
  }
  EXPECT_EQ(chains, 3u);

  // The admission instant and both request-lifecycle spans exist, and
  // the queue span closes before the batch ends.
  std::optional<SpanWindow> request;
  std::optional<SpanWindow> queue;
  bool admitted = false;
  for (const TraceEvent& event : events) {
    if (event.name == "admit") admitted = true;
    if (event.phase != TracePhase::kBegin) continue;
    if (event.name == "request") {
      request = span_window(events, "request", event.id);
    }
    if (event.name == "queue") queue = span_window(events, "queue", event.id);
  }
  EXPECT_TRUE(admitted);
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(queue.has_value());
  // request span: admission → outcome. It opens before the batch and
  // closes inside it (the outcome is delivered, then the batch span
  // closes last).
  EXPECT_LT(request->begin, batch->begin);
  EXPECT_GT(request->end, batch->begin);
  EXPECT_LT(request->end, batch->end);
  // queue span: admission → formation, so it closes before execution.
  EXPECT_LT(queue->begin, batch->begin);
  EXPECT_LT(queue->end, batch->end);
}

TEST(ServiceTelemetry, TraceWrapsTransferRetriesInTransferSpans) {
  // Paged service with a scripted fail-twice fault: the transfer span of
  // partition 0 must contain its two fault+retry instants by sequence.
  ServiceConfig config = serial_config();
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  config.trace = std::make_shared<telemetry::TraceRecorder>();
  auto injector = std::make_shared<TransferFaultInjector>();
  injector->fail_partition(0, 2);
  config.options.transfer_faults = injector;
  config.options.transfer_retry_limit = 3;
  Service service(config);
  service.add_graph("g", small_graph());

  // Seeds confined to partition 0 so the scripted fault is guaranteed to
  // hit a demand load.
  const PartitionedGraph parts(*small_graph(),
                               config.options.num_partitions);
  std::vector<VertexId> seeds;
  for (VertexId v = 0;
       v < small_graph()->num_vertices() && seeds.size() < 4; ++v) {
    if (parts.part_of(v) == 0) seeds.push_back(v);
  }
  ASSERT_EQ(seeds.size(), 4u);
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, 8, seeds);
  const RunResult result = service.sample(std::move(request));
  ASSERT_TRUE(result.oom.has_value());
  EXPECT_EQ(result.oom->transfer_retries, 2u);

  const std::vector<TraceEvent> events = config.trace->snapshot();
  // Collect transfer span windows by id.
  std::map<std::uint64_t, SpanWindow> transfers;
  for (const TraceEvent& event : events) {
    if (event.name != "transfer" || event.phase != TracePhase::kBegin) {
      continue;
    }
    const std::optional<SpanWindow> window =
        span_window(events, "transfer", event.id);
    ASSERT_TRUE(window.has_value()) << "unbalanced transfer span";
    transfers.emplace(event.id, *window);
  }
  ASSERT_FALSE(transfers.empty());

  // Both retry instants (and both fault instants) fall inside some
  // transfer span's sequence window.
  std::size_t retries = 0;
  std::size_t faults = 0;
  for (const TraceEvent& event : events) {
    if (event.name != "transfer_retry" && event.name != "transfer_fault") {
      continue;
    }
    (event.name == "transfer_retry" ? retries : faults) += 1;
    bool inside = false;
    for (const auto& [id, window] : transfers) {
      if (event.seq > window.begin && event.seq < window.end) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << event.name << " outside every transfer span";
  }
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(faults, 2u);

  // The successful transfer span reports its attempt count.
  bool saw_retried_transfer = false;
  for (const TraceEvent& event : events) {
    if (event.name == "transfer" && event.phase == TracePhase::kEnd &&
        arg(event, "attempts") == "3") {
      saw_retried_transfer = true;
    }
  }
  EXPECT_TRUE(saw_retried_transfer);
}

TEST(ServiceTelemetry, StreamChunksTraceInsideTheBatchSpan) {
  ServiceConfig config = serial_config();
  config.trace = std::make_shared<telemetry::TraceRecorder>();
  Service service(config);
  service.add_graph("g", small_graph());

  StreamSubmission submission = service.submit_streaming(walk_request(3, 8));
  ASSERT_TRUE(submission.accepted());
  std::size_t chunks = 0;
  while (submission.stream->next().has_value()) ++chunks;
  EXPECT_EQ(chunks, 3u);
  service.drain();  // the batch span closes after the stream finishes

  const std::vector<TraceEvent> events = config.trace->snapshot();
  std::optional<SpanWindow> batch;
  for (const TraceEvent& event : events) {
    if (event.name == "batch" && event.phase == TracePhase::kBegin) {
      batch = span_window(events, "batch", event.id);
    }
  }
  ASSERT_TRUE(batch.has_value());
  std::size_t chunk_instants = 0;
  for (const TraceEvent& event : events) {
    if (event.name != "stream_chunk") continue;
    ++chunk_instants;
    EXPECT_EQ(event.phase, TracePhase::kInstant);
    EXPECT_GT(event.seq, batch->begin);
    EXPECT_LT(event.seq, batch->end);
    EXPECT_NE(arg(event, "queued"), "");
  }
  EXPECT_EQ(chunk_instants, 3u);

  // Occupancy was observed once per delivered chunk.
  EXPECT_EQ(service.histogram("csaw_stream_chunk_occupancy").count, 3u);
}

TEST(ServiceTelemetry, RejectionsEmitTypedInstants) {
  ServiceConfig config = serial_config();
  config.trace = std::make_shared<telemetry::TraceRecorder>();
  Service service(config);
  service.add_graph("g", small_graph());

  Submission unknown = service.submit(walk_request(2, 8));
  // walk_request targets "g" which exists; craft an unknown-graph one.
  SampleRequest bad = walk_request(2, 8);
  bad.graph = "missing";
  Submission rejected = service.submit(std::move(bad));
  EXPECT_TRUE(unknown.accepted());
  EXPECT_EQ(rejected.rejected, RejectReason::kUnknownGraph);
  unknown.result.get();

  bool saw_reject = false;
  for (const TraceEvent& event : config.trace->snapshot()) {
    if (event.name == "reject") {
      saw_reject = true;
      EXPECT_NE(arg(event, "reason"), "");
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(ServiceTelemetry, EstimatedEdgeCostWeighsWalksAndTrees) {
  // Walks: instances × length.
  EXPECT_EQ(Service::estimated_edge_cost(walk_request(8, 512)), 8u * 512u);
  EXPECT_EQ(Service::estimated_edge_cost(walk_request(1, 2)), 2u);

  // Sampling trees: instances × sum of neighbor_size^d.
  std::vector<VertexId> seeds = {0, 1};
  SampleRequest tree = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedNeighborSampling, 2, seeds);
  tree.neighbor_size = 3;
  EXPECT_EQ(Service::estimated_edge_cost(tree), 2u * (3u + 9u));

  // Deep wide trees saturate at the per-instance cap instead of
  // overflowing.
  SampleRequest deep = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedNeighborSampling, 40, seeds);
  deep.neighbor_size = 16;
  EXPECT_EQ(Service::estimated_edge_cost(deep),
            2u * (std::uint64_t{1} << 20));
}

}  // namespace
}  // namespace csaw
