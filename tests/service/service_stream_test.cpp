// The streaming delivery contract (Service::submit_streaming): the
// concatenation of a stream's chunks, ordered by request-local instance
// index, is byte-identical to the buffered RunResult of the same request
// — across execution modes (in-memory, legacy paged, demand-cache paged,
// multi-device), host widths 1/2/7 and consumer speeds; a slow consumer's
// in-flight chunks never exceed ServiceConfig::stream_chunk_budget; and
// cancellation / deadline expiry mid-stream deliver the already-completed
// chunks before surfacing the PR 7 RequestOutcome taxonomy as a typed
// RequestError. Abandoning a stream cancels the request's remaining
// instances instead of parking the batch forever.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kWalkLength = 8;
constexpr std::uint32_t kInstances = 12;
constexpr std::uint32_t kBase = 64;
constexpr std::uint32_t kWidths[] = {1, 2, 7};

const std::shared_ptr<const CsrGraph>& shared_graph() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 93));
  return g;
}

std::vector<VertexId> spread_seeds(std::uint32_t n, std::uint32_t stride) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] =
        static_cast<VertexId>((i * stride) % shared_graph()->num_vertices());
  }
  return seeds;
}

SampleRequest walk_request(std::uint32_t n = kInstances,
                           std::uint32_t length = kWalkLength) {
  SampleRequest request = SampleRequest::single_seeds(
      "g", AlgorithmId::kBiasedRandomWalk, length, spread_seeds(n, 131));
  request.rng_base = kBase;
  return request;
}

/// Drains `stream` to completion and returns the chunks keyed by
/// instance, asserting each instance arrives exactly once.
std::map<std::uint32_t, std::vector<Edge>> drain_stream(SampleStream& stream) {
  std::map<std::uint32_t, std::vector<Edge>> rows;
  while (auto chunk = stream.next()) {
    const bool inserted =
        rows.emplace(chunk->instance, std::move(chunk->edges)).second;
    EXPECT_TRUE(inserted) << "instance " << chunk->instance
                          << " streamed twice";
  }
  return rows;
}

void expect_stream_equals_buffered(
    const std::map<std::uint32_t, std::vector<Edge>>& rows,
    const SampleStore& buffered, const std::string& label) {
  ASSERT_EQ(rows.size(), buffered.num_instances()) << label;
  for (std::uint32_t i = 0; i < buffered.num_instances(); ++i) {
    const auto it = rows.find(i);
    ASSERT_NE(it, rows.end()) << label << ", instance " << i;
    EXPECT_EQ(it->second, buffered.edges(i)) << label << ", instance " << i;
  }
}

/// One buffered run and one streamed run of the identical request (same
/// pinned Philox base) through one service; the streamed bytes must
/// reassemble into the buffered ones exactly.
void expect_streamed_equals_buffered(const ServiceConfig& base_config,
                                     const std::string& label) {
  for (const std::uint32_t width : kWidths) {
    ServiceConfig config = base_config;
    config.options.num_threads = width;
    Service service(config);
    service.add_graph("g", shared_graph());
    const std::string case_label =
        label + " @ " + std::to_string(width) + " threads";

    Submission buffered = service.submit(walk_request());
    ASSERT_TRUE(buffered.accepted()) << case_label;
    const RunResult reference = buffered.result.get();
    ASSERT_GT(reference.sampled_edges(), 0u) << case_label;

    StreamSubmission streaming = service.submit_streaming(walk_request());
    ASSERT_TRUE(streaming.accepted()) << case_label;
    ASSERT_NE(streaming.stream, nullptr) << case_label;
    EXPECT_EQ(streaming.rng_base, kBase) << case_label;
    const auto rows = drain_stream(*streaming.stream);
    expect_stream_equals_buffered(rows, reference.samples, case_label);
    EXPECT_EQ(streaming.stream->outcome(), RequestOutcome::kOk) << case_label;
    EXPECT_EQ(streaming.stream->delivered_chunks(), kInstances) << case_label;
    EXPECT_EQ(streaming.stream->delivered_edges(),
              reference.sampled_edges())
        << case_label;

    // Both runs retired cleanly and the streamed request booked its
    // edges even though its rows were moved out mid-run.
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 2u) << case_label;
    EXPECT_EQ(stats.failed, 0u) << case_label;
    EXPECT_EQ(stats.sampled_edges, 2 * reference.sampled_edges())
        << case_label;
  }
}

TEST(ServiceStream, InMemoryMatchesBuffered) {
  ServiceConfig config;  // small graph, kAuto: in-memory
  expect_streamed_equals_buffered(config, "in-memory");
}

TEST(ServiceStream, LegacyPagedMatchesBuffered) {
  ServiceConfig config;
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  config.paged_demand_cache = false;
  expect_streamed_equals_buffered(config, "paged/legacy");
}

TEST(ServiceStream, DemandCachePagedMatchesBuffered) {
  ServiceConfig config;
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  config.paged_demand_cache = true;
  expect_streamed_equals_buffered(config, "paged/demand-cache");
}

TEST(ServiceStream, MultiDeviceMatchesBuffered) {
  ServiceConfig config;
  config.options.mode = ExecutionMode::kMultiDevice;
  config.options.num_devices = 2;
  expect_streamed_equals_buffered(config, "multi-device");
}

TEST(ServiceStream, StepBarrierMatchesBuffered) {
  // The barrier schedule has no per-chain completion point; the
  // end-of-run sweep must still deliver every chunk.
  ServiceConfig config;
  config.options.schedule = Schedule::kStepBarrier;
  expect_streamed_equals_buffered(config, "in-memory/barrier");
}

TEST(ServiceStream, SlowConsumerIsBoundedByBudget) {
  ServiceConfig config;
  config.stream_chunk_budget = 2;
  config.options.num_threads = 4;
  Service service(config);
  service.add_graph("g", shared_graph());

  constexpr std::uint32_t kMany = 24;
  Submission buffered = service.submit(walk_request(kMany));
  ASSERT_TRUE(buffered.accepted());
  const RunResult reference = buffered.result.get();

  StreamSubmission streaming = service.submit_streaming(walk_request(kMany));
  ASSERT_TRUE(streaming.accepted());
  // Consume deliberately slower than the producer completes instances:
  // the producer must park instead of queueing more than the budget.
  std::map<std::uint32_t, std::vector<Edge>> rows;
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto chunk = streaming.stream->next();
    if (!chunk.has_value()) break;
    rows.emplace(chunk->instance, std::move(chunk->edges));
  }
  expect_stream_equals_buffered(rows, reference.samples, "slow consumer");
  // The backpressure bound held at every point in the run — and the
  // consumer was genuinely behind, so the bound was actually exercised.
  EXPECT_LE(streaming.stream->peak_queued(), 2u);
  EXPECT_EQ(streaming.stream->delivered_chunks(), kMany);
  service.drain();
  EXPECT_EQ(service.stats().failed, 0u);
}

TEST(ServiceStream, CancelMidStreamDeliversPrefixThenTypedOutcome) {
  // Serial host + budget 1: after the first chunk is taken the producer
  // parks on the second, so no further instance can start sampling until
  // the consumer moves — cancelling here provably lands mid-stream.
  ServiceConfig config;
  config.stream_chunk_budget = 1;
  config.options.num_threads = 1;
  Service service(config);
  service.add_graph("g", shared_graph());

  Submission buffered = service.submit(walk_request());
  ASSERT_TRUE(buffered.accepted());
  const RunResult reference = buffered.result.get();

  CancelSource client;
  SampleRequest request = walk_request();
  request.cancel = client.token();
  StreamSubmission streaming = service.submit_streaming(std::move(request));
  ASSERT_TRUE(streaming.accepted());

  auto first = streaming.stream->next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->edges, reference.samples.edges(first->instance));
  client.cancel();

  // Already-completed chunks drain first, then the typed outcome.
  std::uint64_t delivered = 1;
  try {
    while (auto chunk = streaming.stream->next()) {
      ++delivered;
      EXPECT_EQ(chunk->edges, reference.samples.edges(chunk->instance));
    }
    FAIL() << "cancelled stream ended without a typed outcome";
  } catch (const RequestError& error) {
    EXPECT_EQ(error.outcome(), RequestOutcome::kCancelled);
  }
  EXPECT_EQ(streaming.stream->outcome(), RequestOutcome::kCancelled);
  // The cancel genuinely cut the run short: not every instance streamed.
  EXPECT_LT(delivered, kInstances);
  service.drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServiceStream, DeadlineMidStreamSurfacesAsDeadlineExceeded) {
  // Same parked-producer construction, but the clock does the firing:
  // while the consumer sits on the parked stream, the request's deadline
  // expires and the dispatcher cancels its remaining instances.
  ServiceConfig config;
  config.stream_chunk_budget = 1;
  config.options.num_threads = 1;
  Service service(config);
  service.add_graph("g", shared_graph());

  Submission buffered = service.submit(walk_request());
  ASSERT_TRUE(buffered.accepted());
  const RunResult reference = buffered.result.get();

  SampleRequest request = walk_request();
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  StreamSubmission streaming = service.submit_streaming(std::move(request));
  ASSERT_TRUE(streaming.accepted());

  auto first = streaming.stream->next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->edges, reference.samples.edges(first->instance));
  // Sit on the stream until the deadline is safely past.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  std::uint64_t delivered = 1;
  try {
    while (auto chunk = streaming.stream->next()) {
      ++delivered;
      EXPECT_EQ(chunk->edges, reference.samples.edges(chunk->instance));
    }
    FAIL() << "expired stream ended without a typed outcome";
  } catch (const RequestError& error) {
    EXPECT_EQ(error.outcome(), RequestOutcome::kDeadlineExceeded);
  }
  EXPECT_LT(delivered, kInstances);
  service.drain();
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(ServiceStream, QueuedDeadlineExpiryFailsTheStreamFast) {
  // A paused service never dispatches: the deadline expires while the
  // request is still queued, and the sweep must finish the stream with
  // the typed outcome instead of fulfilling a promise nobody holds.
  ServiceConfig config;
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", shared_graph());

  SampleRequest request = walk_request();
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  StreamSubmission streaming = service.submit_streaming(std::move(request));
  ASSERT_TRUE(streaming.accepted());

  EXPECT_THROW(
      {
        while (streaming.stream->next().has_value()) {
        }
      },
      RequestError);
  EXPECT_EQ(streaming.stream->outcome(), RequestOutcome::kDeadlineExceeded);
  EXPECT_EQ(streaming.stream->delivered_chunks(), 0u);
  service.resume();
  service.drain();
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(ServiceStream, AbandoningTheStreamCancelsTheRequest) {
  // Dropping the stream handle mid-run must not park the batch forever:
  // the destructor cancels the request's remaining instances and the
  // service retires it as cancelled.
  ServiceConfig config;
  config.stream_chunk_budget = 1;
  config.options.num_threads = 1;
  Service service(config);
  service.add_graph("g", shared_graph());

  {
    StreamSubmission streaming = service.submit_streaming(walk_request());
    ASSERT_TRUE(streaming.accepted());
    auto first = streaming.stream->next();
    ASSERT_TRUE(first.has_value());
    // The stream handle dies here with the producer likely parked.
  }
  service.drain();  // must not hang
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(ServiceStream, StreamingAndBufferedCoalesceIntoOneBatch) {
  // A streaming request and a buffered request on one graph coalesce
  // like any two compatible requests; each gets its own delivery shape
  // and the buffered neighbor's bytes are untouched by the bridge.
  ServiceConfig config;
  config.start_paused = true;
  Service service(config);
  service.add_graph("g", shared_graph());

  // Solo buffered references for both stream ranges.
  ServiceConfig ref_config;
  Service reference(ref_config);
  reference.add_graph("g", shared_graph());
  const RunResult want_probe =
      reference.submit(walk_request()).result.get();
  SampleRequest other = walk_request();
  other.rng_base = kBase + 100;
  const RunResult want_other =
      reference.submit(std::move(other)).result.get();

  StreamSubmission streaming = service.submit_streaming(walk_request());
  SampleRequest buffered_request = walk_request();
  buffered_request.rng_base = kBase + 100;
  Submission buffered = service.submit(std::move(buffered_request));
  ASSERT_TRUE(streaming.accepted() && buffered.accepted());
  service.resume();

  const auto rows = drain_stream(*streaming.stream);
  expect_stream_equals_buffered(rows, want_probe.samples, "coalesced stream");
  const RunResult got = buffered.result.get();
  ASSERT_EQ(got.samples.num_instances(), want_other.samples.num_instances());
  for (std::uint32_t i = 0; i < got.samples.num_instances(); ++i) {
    EXPECT_EQ(got.samples.edges(i), want_other.samples.edges(i));
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 2u);
}

}  // namespace
}  // namespace csaw
