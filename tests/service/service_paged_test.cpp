// Paged traffic through the service's per-graph demand caches
// (ServiceConfig::paged_demand_cache): one persistent PartitionCache per
// paged graph keeps partitions warm across batches, every registered
// paged graph gets a deterministic slice of the device budget, and the
// whole mechanism is invisible in the bytes — turning it off changes
// transfer counts and makespans, never samples. The byte-level
// solo-vs-coalesced contract lives in service_determinism_test.cpp; this
// suite proves the residency side: warm hits, budget slicing, stats and
// graphs() reporting.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "oom/partitioned_graph.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kWalkLength = 8;
constexpr std::uint32_t kBase = 64;

const std::shared_ptr<const CsrGraph>& graph_a() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 93));
  return g;
}

const std::shared_ptr<const CsrGraph>& graph_b() {
  static const auto g =
      std::make_shared<const CsrGraph>(generate_rmat(1024, 8192, 94));
  return g;
}

SampleRequest walk_request(const std::string& graph, const CsrGraph& g,
                           std::uint32_t n = 12) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * 131) % g.num_vertices());
  }
  SampleRequest request = SampleRequest::single_seeds(
      graph, AlgorithmId::kBiasedRandomWalk, kWalkLength, seeds);
  request.rng_base = kBase;
  return request;
}

ServiceConfig paged_config() {
  ServiceConfig config;
  config.options.num_threads = 1;
  config.options.memory_assumption = MemoryAssumption::kExceeds;
  return config;
}

RunResult run_one(Service& service, SampleRequest request) {
  Submission submission = service.submit(std::move(request));
  EXPECT_TRUE(submission.accepted());
  service.drain();
  return submission.result.get();
}

void expect_same_samples(const SampleStore& a, const SampleStore& b) {
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (std::uint32_t i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.edges(i), b.edges(i)) << "instance " << i;
  }
}

TEST(ServicePaged, CacheStaysWarmAcrossBatches) {
  Service service(paged_config());
  service.add_graph("g", graph_a());

  const RunResult first = run_one(service, walk_request("g", *graph_a()));
  ASSERT_TRUE(first.oom.has_value());
  const ServiceStats after_first = service.stats();
  EXPECT_EQ(after_first.paged_batches, 1u);

  // The whole graph's partitions fit the (default 16 GiB) budget, so the
  // first batch populated every slot it touched.
  const std::vector<GraphResidency> graphs = service.graphs();
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_TRUE(graphs[0].paged);
  EXPECT_TRUE(graphs[0].partitions_built);
  EXPECT_EQ(graphs[0].cache_capacity, paged_config().options.num_partitions);

  // Same pinned stream range again: the second batch reruns the exact
  // request on warm partitions — more hits, identical bytes.
  const RunResult second = run_one(service, walk_request("g", *graph_a()));
  const ServiceStats after_second = service.stats();
  EXPECT_EQ(after_second.paged_batches, 2u);
  EXPECT_GT(after_second.cache_hits, after_first.cache_hits);
  expect_same_samples(first.samples, second.samples);
}

TEST(ServicePaged, BudgetIsSlicedAcrossRegisteredPagedGraphs) {
  // Shrink the simulated device so the per-graph slice binds: with two
  // registered paged graphs, each cache gets memory_budget_fraction of
  // half the device — small enough here to force eviction pressure.
  ServiceConfig config = paged_config();
  const PartitionedGraph parts_a(*graph_a(), config.options.num_partitions);
  config.options.device_params.memory_bytes = 4 * parts_a.max_partition_bytes();
  Service service(config);
  service.add_graph("a", graph_a());
  service.add_graph("b", graph_b());

  const RunResult on_a = run_one(service, walk_request("a", *graph_a()));
  const RunResult on_b = run_one(service, walk_request("b", *graph_b()));
  ASSERT_TRUE(on_a.oom.has_value());
  ASSERT_TRUE(on_b.oom.has_value());

  // Mirror of the service's slicing policy: each graph's capacity is
  // partitions_fitting(fraction * memory / registered paged graphs),
  // a registration-time fact independent of traffic.
  const std::uint64_t budget = static_cast<std::uint64_t>(
      config.options.memory_budget_fraction *
      static_cast<double>(config.options.device_params.memory_bytes) / 2.0);
  for (const GraphResidency& residency : service.graphs()) {
    const CsrGraph& g = residency.name == "a" ? *graph_a() : *graph_b();
    const PartitionedGraph parts(g, config.options.num_partitions);
    EXPECT_EQ(residency.cache_capacity, parts.partitions_fitting(budget))
        << residency.name;
    EXPECT_LT(residency.cache_capacity, config.options.num_partitions)
        << residency.name << ": the small device was meant to bind";
  }

  // Bounded caches under walks that cross partitions must thrash a bit.
  EXPECT_GT(service.stats().cache_evictions, 0u);
}

TEST(ServicePaged, DisabledCacheIsColdAndByteIdentical) {
  ServiceConfig cold_config = paged_config();
  cold_config.paged_demand_cache = false;
  Service cold(cold_config);
  cold.add_graph("g", graph_a());
  const RunResult uncached = run_one(cold, walk_request("g", *graph_a()));
  ASSERT_TRUE(uncached.oom.has_value());

  // Legacy residency: the batch still pages (and is counted), but no
  // cache exists anywhere — no hits, no prefetches, no reported slots.
  const ServiceStats stats = cold.stats();
  EXPECT_EQ(stats.paged_batches, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_prefetch_transfers, 0u);
  EXPECT_EQ(cold.graphs().at(0).cache_capacity, 0u);

  // The cache toggle moves bytes in time, never in value.
  Service warm(paged_config());
  warm.add_graph("g", graph_a());
  const RunResult cached = run_one(warm, walk_request("g", *graph_a()));
  expect_same_samples(cached.samples, uncached.samples);
}

}  // namespace
}  // namespace csaw
