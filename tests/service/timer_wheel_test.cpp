// Unit coverage for the dispatcher's slot-bucketed deadline index: slot
// bucketing keeps distinct deadlines independent, expire() pops in
// deadline order (ties by ticket), remove() before the deadline never
// fires, and deadlines far enough apart to wrap the slot ring land in the
// right expiry batch anyway (the wheel hashes ticks into slots but keeps
// exact deadlines per entry).
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "service/timer_wheel.hpp"

namespace csaw {
namespace {

using Clock = TimerWheel::Clock;
using std::chrono::milliseconds;

TEST(TimerWheel, StartsEmpty) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_FALSE(wheel.next_wakeup().has_value());
  EXPECT_TRUE(wheel.expire(Clock::now()).empty());
}

TEST(TimerWheel, ExpiresOnlyDueTickets) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  wheel.add(1, t0 + milliseconds(5));
  wheel.add(2, t0 + milliseconds(50));
  wheel.add(3, t0 + milliseconds(500));
  EXPECT_EQ(wheel.size(), 3u);

  // Nothing is due yet.
  EXPECT_TRUE(wheel.expire(t0).empty());
  EXPECT_EQ(wheel.size(), 3u);

  // Only the 5ms ticket at t0+10ms.
  EXPECT_EQ(wheel.expire(t0 + milliseconds(10)),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.size(), 2u);

  // The rest, once due — each fires exactly once.
  EXPECT_EQ(wheel.expire(t0 + milliseconds(600)),
            (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(wheel.expire(t0 + milliseconds(700)).empty());
}

TEST(TimerWheel, ExpiryOrderIsDeadlineThenTicket) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  // Inserted out of order; 40 and 41 share one deadline (tie on ticket).
  wheel.add(9, t0 + milliseconds(30));
  wheel.add(41, t0 + milliseconds(10));
  wheel.add(40, t0 + milliseconds(10));
  wheel.add(7, t0 + milliseconds(20));
  EXPECT_EQ(wheel.expire(t0 + milliseconds(60)),
            (std::vector<std::uint64_t>{40, 41, 7, 9}));
}

TEST(TimerWheel, PastDeadlineFiresImmediately) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  wheel.add(5, t0 - milliseconds(20));
  EXPECT_EQ(wheel.expire(t0), (std::vector<std::uint64_t>{5}));
}

TEST(TimerWheel, CancelBeforeFireNeverExpires) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  wheel.add(1, t0 + milliseconds(5));
  wheel.add(2, t0 + milliseconds(5));
  wheel.remove(1);
  EXPECT_EQ(wheel.size(), 1u);
  // remove() is idempotent — retired requests race their own deadlines.
  wheel.remove(1);
  wheel.remove(99);
  EXPECT_EQ(wheel.expire(t0 + milliseconds(10)),
            (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, ReAddReplacesDeadline) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  wheel.add(1, t0 + milliseconds(5));
  wheel.add(1, t0 + milliseconds(500));  // re-register: the later one wins
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.expire(t0 + milliseconds(100)).empty());
  EXPECT_EQ(wheel.expire(t0 + milliseconds(600)),
            (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, NextWakeupTracksEarliestDeadline) {
  TimerWheel wheel;
  const auto t0 = Clock::now();
  wheel.add(1, t0 + milliseconds(300));
  ASSERT_TRUE(wheel.next_wakeup().has_value());
  EXPECT_EQ(*wheel.next_wakeup(), t0 + milliseconds(300));

  wheel.add(2, t0 + milliseconds(100));
  EXPECT_EQ(*wheel.next_wakeup(), t0 + milliseconds(100));

  // Removing the earliest re-exposes the survivor.
  wheel.remove(2);
  EXPECT_EQ(*wheel.next_wakeup(), t0 + milliseconds(300));

  wheel.remove(1);
  EXPECT_FALSE(wheel.next_wakeup().has_value());
}

TEST(TimerWheel, WraparoundKeepsDistantDeadlinesApart) {
  // A tiny ring (4 slots x 1ms) guarantees collisions: deadlines 4ms
  // apart hash to the SAME slot, deadlines 250ms apart wrap the ring many
  // times over. Neither may leak into an earlier expiry batch.
  TimerWheel wheel(/*num_slots=*/4, milliseconds(1));
  const auto t0 = Clock::now();
  wheel.add(1, t0 + milliseconds(2));
  wheel.add(2, t0 + milliseconds(6));    // same slot as ticket 1
  wheel.add(3, t0 + milliseconds(250));  // wraps the ring ~62 times
  wheel.add(4, t0 + milliseconds(251));

  EXPECT_EQ(wheel.expire(t0 + milliseconds(3)),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.expire(t0 + milliseconds(7)),
            (std::vector<std::uint64_t>{2}));
  // Far future: still pending, next_wakeup still bounded by them.
  EXPECT_EQ(wheel.size(), 2u);
  EXPECT_EQ(*wheel.next_wakeup(), t0 + milliseconds(250));
  EXPECT_EQ(wheel.expire(t0 + milliseconds(300)),
            (std::vector<std::uint64_t>{3, 4}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, ManyTicketsAcrossSlotsExpireInOneCall) {
  TimerWheel wheel(/*num_slots=*/8, milliseconds(1));
  const auto t0 = Clock::now();
  std::vector<std::uint64_t> want;
  for (std::uint64_t t = 0; t < 64; ++t) {
    // Spread over 64 distinct deadlines: every slot holds 8 entries.
    wheel.add(t, t0 + milliseconds(1 + static_cast<int>(t)));
    want.push_back(t);
  }
  EXPECT_EQ(wheel.size(), 64u);
  EXPECT_EQ(wheel.expire(t0 + milliseconds(100)), want);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace csaw
