// Concurrency soak for csaw::Service: 8 client threads fire 200 mixed
// requests (two graphs, two algorithms, occasional invalid ones) at a
// live service while a separate thread polls stats() and graphs(). CI
// runs this under ThreadSanitizer with CSAW_THREADS=4 (the service-soak
// job), turning data races between admission, the dispatcher and the
// shared engine pool into hard failures. Assertions here are about
// accounting closure — every accepted request resolves, every counter
// adds up — not about bytes (service_determinism_test.cpp owns those).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint32_t kRequestsPerClient = 25;  // 8 x 25 = 200 total

TEST(ServiceSoak, MixedTrafficFromEightClients) {
  ServiceConfig config;
  config.max_queue_depth = 64;
  Service service(config);
  const auto small =
      std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95));
  const auto large =
      std::make_shared<const CsrGraph>(generate_rmat(2048, 16384, 96));
  service.add_graph("small", small);
  service.add_graph("large", large);

  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> edges{0};

  const auto client = [&](std::uint32_t c) {
    std::vector<std::future<RunResult>> in_flight;
    for (std::uint32_t r = 0; r < kRequestsPerClient; ++r) {
      SampleRequest request;
      const bool use_large = r % 3 == 0;
      request.graph = use_large ? "large" : "small";
      request.algorithm = (r % 2 == 0) ? AlgorithmId::kBiasedRandomWalk
                                       : AlgorithmId::kBiasedNeighborSampling;
      request.depth_or_length = 4 + (r % 3);
      const VertexId num_vertices =
          (use_large ? large : small)->num_vertices();
      const std::uint32_t instances = 2 + (r % 4);
      for (std::uint32_t i = 0; i < instances; ++i) {
        request.seeds.push_back(
            {static_cast<VertexId>((c * 131 + r * 17 + i) % num_vertices)});
      }
      if (r % 10 == 9) request.graph = "missing";  // exercise rejection
      Submission submission = service.submit(std::move(request));
      if (!submission.accepted()) {
        EXPECT_EQ(submission.rejected, RejectReason::kUnknownGraph);
        ++rejected;
        continue;
      }
      in_flight.push_back(std::move(submission.result));
      // Resolve a few early so queue pressure and waiting interleave.
      if (in_flight.size() >= 4) {
        edges += in_flight.front().get().sampled_edges();
        in_flight.erase(in_flight.begin());
        ++resolved;
      }
    }
    for (auto& future : in_flight) {
      edges += future.get().sampled_edges();
      ++resolved;
    }
  };

  std::atomic<bool> stop_observer{false};
  std::thread observer([&] {
    // Concurrent reads of the control plane while traffic flows.
    while (!stop_observer.load()) {
      (void)service.stats();
      (void)service.graphs();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& t : clients) t.join();
  stop_observer.store(true);
  observer.join();
  service.shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, resolved.load());
  EXPECT_EQ(stats.completed, resolved.load());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected_total(), rejected.load());
  EXPECT_EQ(stats.rejected_unknown_graph, rejected.load());
  EXPECT_EQ(stats.sampled_edges, edges.load());
  EXPECT_GT(stats.sampled_edges, 0u);
  EXPECT_LE(stats.batches, stats.completed);
  EXPECT_GT(stats.batches, 0u);
}

}  // namespace
}  // namespace csaw
