// Concurrency soak for csaw::Service: 8 client threads fire 200 mixed
// requests (two graphs, two algorithms, occasional invalid ones) at a
// live service while a separate thread polls stats() and graphs(). CI
// runs this under ThreadSanitizer with CSAW_THREADS=4 (the service-soak
// job), turning data races between admission, the dispatcher and the
// shared engine pool into hard failures. Assertions here are about
// accounting closure — every accepted request resolves, every counter
// adds up — not about bytes (service_determinism_test.cpp owns those).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/service.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint32_t kRequestsPerClient = 25;  // 8 x 25 = 200 total

TEST(ServiceSoak, MixedTrafficFromEightClients) {
  ServiceConfig config;
  config.max_queue_depth = 64;
  // Exercise every scheduler policy at once: three concurrent batch
  // runners on the shared pool, a short batching window so both the
  // deadline-wait and the launch paths run, and a quota tight enough
  // that some tenants get deferred under load.
  config.max_concurrent_batches = 3;
  config.batching_deadline = std::chrono::microseconds(200);
  config.tenant_quota = 12;
  Service service(config);
  const auto small =
      std::make_shared<const CsrGraph>(generate_rmat(512, 4096, 95));
  const auto large =
      std::make_shared<const CsrGraph>(generate_rmat(2048, 16384, 96));
  service.add_graph("small", small);
  service.add_graph("large", large);

  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> edges{0};

  const auto client = [&](std::uint32_t c) {
    std::vector<std::future<RunResult>> in_flight;
    for (std::uint32_t r = 0; r < kRequestsPerClient; ++r) {
      SampleRequest request;
      const bool use_large = r % 3 == 0;
      request.graph = use_large ? "large" : "small";
      request.algorithm = (r % 2 == 0) ? AlgorithmId::kBiasedRandomWalk
                                       : AlgorithmId::kBiasedNeighborSampling;
      request.depth_or_length = 4 + (r % 3);
      const VertexId num_vertices =
          (use_large ? large : small)->num_vertices();
      const std::uint32_t instances = 2 + (r % 4);
      for (std::uint32_t i = 0; i < instances; ++i) {
        request.seeds.push_back(
            {static_cast<VertexId>((c * 131 + r * 17 + i) % num_vertices)});
      }
      if (r % 10 == 9) request.graph = "missing";  // exercise rejection
      request.tenant = "client-" + std::to_string(c % 3);  // 3 tenants
      Submission submission = service.submit(std::move(request));
      if (!submission.accepted()) {
        EXPECT_EQ(submission.rejected, RejectReason::kUnknownGraph);
        ++rejected;
        continue;
      }
      in_flight.push_back(std::move(submission.result));
      // Resolve a few early so queue pressure and waiting interleave.
      if (in_flight.size() >= 4) {
        edges += in_flight.front().get().sampled_edges();
        in_flight.erase(in_flight.begin());
        ++resolved;
      }
    }
    for (auto& future : in_flight) {
      edges += future.get().sampled_edges();
      ++resolved;
    }
  };

  std::atomic<bool> stop_observer{false};
  std::thread observer([&] {
    // Concurrent reads of the control plane while traffic flows.
    while (!stop_observer.load()) {
      (void)service.stats();
      (void)service.graphs();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client, c);
  }
  for (auto& t : clients) t.join();
  stop_observer.store(true);
  observer.join();
  service.shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, resolved.load());
  EXPECT_EQ(stats.completed, resolved.load());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.failed, stats.cancelled + stats.deadline_exceeded +
                              stats.transfer_failed + stats.internal_errors);
  EXPECT_EQ(stats.rejected_total(), rejected.load());
  EXPECT_EQ(stats.rejected_unknown_graph, rejected.load());
  EXPECT_EQ(stats.sampled_edges, edges.load());
  EXPECT_GT(stats.sampled_edges, 0u);
  EXPECT_LE(stats.batches, stats.completed);
  EXPECT_GT(stats.batches, 0u);

  // Concurrency stayed within its bound, and the per-tenant slice closes
  // over the totals — no request is double-counted or dropped between
  // the global and the tenant columns.
  EXPECT_GE(stats.peak_concurrent_batches, 1u);
  EXPECT_LE(stats.peak_concurrent_batches, 3u);
  std::uint64_t tenant_accepted = 0;
  std::uint64_t tenant_completed = 0;
  std::uint64_t tenant_failed = 0;
  std::uint64_t tenant_edges = 0;
  for (const TenantStats& tenant : stats.tenants) {
    tenant_accepted += tenant.accepted;
    tenant_completed += tenant.completed;
    tenant_failed += tenant.failed;
    tenant_edges += tenant.sampled_edges;
    EXPECT_LE(tenant.peak_inflight_instances, 12u);  // the quota held
    // Fault-free traffic: the failure breakdown exists and closes at 0.
    EXPECT_EQ(tenant.failed, tenant.cancelled + tenant.deadline_exceeded +
                                 tenant.transfer_failed +
                                 tenant.internal_errors)
        << tenant.tenant;
  }
  EXPECT_EQ(tenant_accepted, stats.accepted);
  EXPECT_EQ(tenant_completed, stats.completed);
  EXPECT_EQ(tenant_failed, stats.failed);
  EXPECT_EQ(tenant_edges, stats.sampled_edges);
}

}  // namespace
}  // namespace csaw
