#include <gtest/gtest.h>

#include "analysis/estimators.hpp"
#include "analysis/metrics.hpp"
#include "graph/generators.hpp"

namespace csaw {
namespace {

TEST(Metrics, DegreeDistributionSums) {
  const CsrGraph g = generate_rmat(1024, 8192, 91);
  const auto dist = degree_distribution(g);
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto cdf = degree_cdf(g);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

TEST(Metrics, KsDistanceProperties) {
  const CsrGraph a = generate_rmat(1024, 8192, 92);
  const CsrGraph star = make_star(1024);
  EXPECT_DOUBLE_EQ(degree_ks_distance(a, a), 0.0);
  const double d = degree_ks_distance(a, star);
  EXPECT_GT(d, 0.1);
  EXPECT_LE(d, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(d, degree_ks_distance(star, a));
}

TEST(Metrics, ClusteringCoefficientKnownValues) {
  EXPECT_DOUBLE_EQ(clustering_coefficient_exact(make_complete(6)), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient_exact(make_star(10)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient_exact(make_cycle(8)), 0.0);
  // Triangle: 3 closed wedges of 3 wedges.
  const CsrGraph triangle = make_complete(3);
  EXPECT_DOUBLE_EQ(clustering_coefficient_exact(triangle), 1.0);
}

TEST(Metrics, ReachableFraction) {
  // Two components: {0,1} and {2,3,4}.
  const CsrGraph g = build_csr({{0, 1}, {2, 3}, {3, 4}});
  EXPECT_NEAR(reachable_fraction(g, 0), 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(reachable_fraction(g, 2), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(reachable_fraction(make_cycle(7), 0), 1.0, 1e-12);
}

TEST(Estimators, AverageDegreeExactOnRegularGraph) {
  // Cycle: every vertex has degree 2; the harmonic estimator is exact
  // regardless of walk behaviour.
  const CsrGraph g = make_cycle(64);
  const double est = estimate_average_degree(g, 8, 50, 5, 7);
  EXPECT_DOUBLE_EQ(est, 2.0);
}

TEST(Estimators, AverageDegreeCloseOnPowerLaw) {
  const CsrGraph g = generate_rmat(2048, 16384, 93);
  const double est = estimate_average_degree(g, 64, 400, 20, 11);
  EXPECT_NEAR(est, g.average_degree(), g.average_degree() * 0.25);
}

TEST(Estimators, DegreeDistributionMatchesExact) {
  const CsrGraph g = generate_rmat(2048, 16384, 94);
  const auto exact = degree_distribution(g);
  const auto est = estimate_degree_distribution(g, 64, 400, 20, 13);
  // Walk-visit coverage misses only light tails; L1 well under 0.3.
  EXPECT_LT(l1_distance(exact, est), 0.3);
}

TEST(Estimators, ClusteringCoefficientOnCliqueAndTriangleFree) {
  // Complete graph: every wedge closed.
  EXPECT_NEAR(estimate_clustering_coefficient(make_complete(16), 8, 60, 3),
              1.0, 1e-12);
  // Bipartite-ish grid: triangle-free.
  EXPECT_NEAR(estimate_clustering_coefficient(make_grid(6, 6), 8, 60, 3),
              0.0, 1e-12);
}

TEST(Estimators, ClusteringCoefficientApproximatesExact) {
  const CsrGraph g = generate_barabasi_albert(400, 4, 95);
  const double exact = clustering_coefficient_exact(g);
  const double est = estimate_clustering_coefficient(g, 64, 300, 17);
  EXPECT_NEAR(est, exact, std::max(0.03, exact * 0.5));
}

TEST(Estimators, PprMatchesPowerIteration) {
  const CsrGraph g = generate_rmat(512, 4096, 96);
  const VertexId source = 0;
  const auto exact = exact_ppr(g, source, 0.15, 60);
  const auto est = estimate_ppr(g, source, 0.15, 2000, 64, 19);
  EXPECT_LT(l1_distance(exact, est), 0.25);
  // The source itself must be the top-mass vertex in both.
  const auto arg_max = [](const std::vector<double>& v) {
    return std::distance(v.begin(), std::max_element(v.begin(), v.end()));
  };
  EXPECT_EQ(arg_max(exact), arg_max(est));
}

TEST(Estimators, ExactPprIsAProbabilityVector) {
  const CsrGraph g = generate_rmat(256, 2048, 97);
  const auto pi = exact_ppr(g, 3, 0.2, 50);
  double total = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Estimators, L1Distance) {
  EXPECT_DOUBLE_EQ(l1_distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(l1_distance({1.0, 0.0}, {0.0, 1.0}), 2.0);
}

}  // namespace
}  // namespace csaw
