#include "algorithms/one_pass.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace csaw {
namespace {

TEST(RandomNodeSampling, DistinctAndInRange) {
  const CsrGraph g = generate_rmat(500, 2000, 41);
  Xoshiro256 rng(1);
  const auto picked = random_node_sampling(g, 100, rng);
  EXPECT_EQ(picked.size(), 100u);
  std::set<VertexId> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 100u);
  for (VertexId v : picked) EXPECT_LT(v, g.num_vertices());
}

TEST(RandomNodeSampling, FullSampleIsPermutation) {
  const CsrGraph g = make_path(10);
  Xoshiro256 rng(2);
  const auto picked = random_node_sampling(g, 10, rng);
  std::set<VertexId> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RandomNodeSampling, IsApproximatelyUniform) {
  const CsrGraph g = make_cycle(10);
  std::vector<std::uint64_t> counts(10, 0);
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 20000; ++trial) {
    for (VertexId v : random_node_sampling(g, 3, rng)) ++counts[v];
  }
  const std::vector<double> expected(10, 0.1);
  EXPECT_LT(chi_square(counts, expected), 35.0);  // df=9
}

TEST(RandomEdgeSampling, DistinctValidEdges) {
  const CsrGraph g = generate_rmat(300, 1500, 43);
  Xoshiro256 rng(4);
  const auto picked = random_edge_sampling(g, 200, rng);
  EXPECT_EQ(picked.size(), 200u);
  std::set<std::pair<VertexId, VertexId>> unique;
  for (const Edge& e : picked) {
    EXPECT_TRUE(g.has_edge(e.src, e.dst));
    unique.emplace(e.src, e.dst);
  }
  EXPECT_EQ(unique.size(), 200u);
}

TEST(RandomEdgeSampling, CountBounds) {
  const CsrGraph g = make_path(3);  // 4 directed edges
  Xoshiro256 rng(5);
  EXPECT_EQ(random_edge_sampling(g, 4, rng).size(), 4u);
  EXPECT_THROW(random_edge_sampling(g, 5, rng), CheckError);
}

TEST(InducedSubgraph, KeepsExactlyInternalEdges) {
  // Path 0-1-2-3-4; induce on {1,2,3}: edges 1-2, 2-3 survive.
  const CsrGraph g = make_path(5);
  const std::vector<VertexId> keep = {3, 1, 2};  // unsorted on purpose
  const CsrGraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 4u);  // 2 undirected edges
  // Renumbered sorted: 1->0, 2->1, 3->2.
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(InducedSubgraph, DeduplicatesInput) {
  const CsrGraph g = make_cycle(4);
  const std::vector<VertexId> keep = {0, 1, 1, 0};
  const CsrGraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_EQ(sub.num_edges(), 2u);
}

}  // namespace
}  // namespace csaw
