#include "algorithms/registry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "algorithms/forest_fire.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace csaw {
namespace {

class AllAlgorithms : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(AllAlgorithms, RunsOnRmatAndProducesValidSample) {
  const AlgorithmId id = GetParam();
  const CsrGraph g = generate_rmat(512, 4096, 33);
  CsrGraphView view(g);

  // Sampling algorithms: depth 2; walks: length 8.
  const AlgorithmInfo info = algorithm_info(id);
  const std::uint32_t depth = info.neighbors_per_step == "1" ? 8 : 2;
  AlgorithmSetup setup = make_algorithm(id, depth);
  SamplingEngine engine(view, setup.policy, setup.spec);
  sim::Device device;

  // MDRW wants a multi-vertex pool; everything else single seeds.
  SampleRun run;
  if (setup.spec.select_frontier) {
    const std::vector<std::vector<VertexId>> seeds = {
        {0, 1, 2, 3}, {4, 5, 6, 7}};
    run = engine.run(device, seeds);
  } else {
    const std::vector<VertexId> seeds = {0, 1, 2, 3};
    run = engine.run_single_seed(device, seeds);
  }

  EXPECT_GT(run.sampled_edges(), 0u) << info.name;
  for (std::uint32_t i = 0; i < run.samples.num_instances(); ++i) {
    for (const Edge& e : run.samples.edges(i)) {
      EXPECT_TRUE(g.has_edge(e.src, e.dst)) << info.name;
    }
  }
  EXPECT_GT(run.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, AllAlgorithms, ::testing::ValuesIn(all_algorithms()),
    [](const auto& info) {
      std::string name = algorithm_info(info.param).name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Registry, CoversTheDesignSpaceOfTableOne) {
  // Table I spans {unbiased, static, dynamic} x {1, >1 neighbors}.
  std::set<std::pair<std::string, std::string>> cells;
  for (AlgorithmId id : all_algorithms()) {
    const auto info = algorithm_info(id);
    cells.emplace(info.bias, info.neighbors_per_step);
  }
  EXPECT_TRUE(cells.count({"unbiased", "1"}));
  EXPECT_TRUE(cells.count({"unbiased", ">1"}));
  EXPECT_TRUE(cells.count({"static", "1"}));
  EXPECT_TRUE(cells.count({"static", ">1"}));
  EXPECT_TRUE(cells.count({"dynamic", "1"}));
}

TEST(ForestFire, BurnCountDistribution) {
  // P(k >= 1) = pf; mean = pf / (1 - pf).
  const double pf = 0.7;
  Xoshiro256 rng(55);
  RunningStat stat;
  std::uint64_t at_least_one = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto k = forest_fire_burn_count(pf, rng.uniform());
    stat.add(static_cast<double>(k));
    at_least_one += k >= 1;
  }
  EXPECT_NEAR(static_cast<double>(at_least_one) / kSamples, pf, 0.01);
  EXPECT_NEAR(stat.mean(), pf / (1.0 - pf), 0.05);
}

TEST(ForestFire, BurnCountEdges) {
  EXPECT_EQ(forest_fire_burn_count(0.7, 0.0), 0u);
  EXPECT_GT(forest_fire_burn_count(0.7, 0.9999), 10u);
  EXPECT_THROW(forest_fire_burn_count(0.0, 0.5), CheckError);
  EXPECT_THROW(forest_fire_burn_count(1.0, 0.5), CheckError);
}

TEST(ForestFire, SpecCapsBurnAtDegreeAndCap) {
  auto setup = forest_fire(0.7, 2, /*max_burn=*/4);
  ASSERT_TRUE(setup.spec.variable_neighbor_size);
  // r=0.9999 would burn >10, but degree 3 caps it.
  EXPECT_LE(setup.spec.variable_neighbor_size(3, 0.9999), 3u);
  EXPECT_EQ(setup.spec.effective_branching_cap(), 4u);
}

TEST(Registry, InfoNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (AlgorithmId id : all_algorithms()) {
    const auto info = algorithm_info(id);
    EXPECT_FALSE(info.name.empty());
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
  EXPECT_EQ(names.size(), all_algorithms().size());
}

}  // namespace
}  // namespace csaw
