#include "select/its.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/stats.hpp"

namespace csaw {
namespace {

struct ItsCase {
  CollisionPolicy policy;
  DetectorKind detector;
  const char* name;
};

class ItsPolicies : public ::testing::TestWithParam<ItsCase> {
 protected:
  SelectConfig config() const {
    SelectConfig c;
    c.policy = GetParam().policy;
    c.detector = GetParam().detector;
    return c;
  }
};

TEST_P(ItsPolicies, SelectsDistinctIndices) {
  ItsSelector selector(config());
  CounterStream rng(321);
  sim::KernelStats stats;
  const std::vector<float> biases = {5, 1, 3, 2, 8, 1, 1, 4};
  for (std::uint32_t trial = 0; trial < 200; ++trial) {
    sim::WarpContext warp(stats);
    const auto picked =
        selector.select(biases, 4, rng, SelectCoords{trial, 0, 0}, warp);
    ASSERT_EQ(picked.size(), 4u);
    const std::set<std::uint32_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), 4u) << "duplicate selection in trial " << trial;
    for (auto idx : picked) EXPECT_LT(idx, biases.size());
  }
}

TEST_P(ItsPolicies, ClampsToPositiveCandidates) {
  ItsSelector selector(config());
  CounterStream rng(5);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  const std::vector<float> biases = {0, 2, 0, 3, 0};
  const auto picked =
      selector.select(biases, 4, rng, SelectCoords{0, 0, 0}, warp);
  ASSERT_EQ(picked.size(), 2u);  // only two positive candidates
  const std::set<std::uint32_t> got(picked.begin(), picked.end());
  EXPECT_EQ(got, (std::set<std::uint32_t>{1, 3}));
}

TEST_P(ItsPolicies, SelectAllIsAPermutation) {
  ItsSelector selector(config());
  CounterStream rng(6);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  const std::vector<float> biases = {1, 2, 3, 4, 5, 6};
  auto picked = selector.select(biases, 6, rng, SelectCoords{0, 0, 0}, warp);
  std::sort(picked.begin(), picked.end());
  EXPECT_EQ(picked, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST_P(ItsPolicies, DeterministicForCoordinates) {
  const std::vector<float> biases = {1, 9, 2, 5};
  ItsSelector a(config()), b(config());
  CounterStream rng(777);
  sim::KernelStats stats;
  sim::WarpContext w1(stats), w2(stats);
  const auto r1 = a.select(biases, 2, rng, SelectCoords{3, 1, 64}, w1);
  const auto r2 = b.select(biases, 2, rng, SelectCoords{3, 1, 64}, w2);
  EXPECT_EQ(r1, r2);
}

TEST_P(ItsPolicies, CoordinatesChangeOutcomeSomewhere) {
  const std::vector<float> biases = {1, 1, 1, 1, 1, 1, 1, 1};
  ItsSelector selector(config());
  CounterStream rng(88);
  sim::KernelStats stats;
  bool any_difference = false;
  for (std::uint32_t i = 0; i < 16 && !any_difference; ++i) {
    sim::WarpContext w1(stats), w2(stats);
    const auto a = selector.select(biases, 2, rng, SelectCoords{i, 0, 0}, w1);
    const auto b = selector.select(biases, 2, rng, SelectCoords{i, 1, 0}, w2);
    any_difference = a != b;
  }
  EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ItsPolicies,
    ::testing::Values(
        ItsCase{CollisionPolicy::kRepeatedSampling,
                DetectorKind::kLinearSearch, "RepeatedLinear"},
        ItsCase{CollisionPolicy::kRepeatedSampling,
                DetectorKind::kBitmapStrided, "RepeatedStrided"},
        ItsCase{CollisionPolicy::kUpdatedSampling,
                DetectorKind::kLinearSearch, "Updated"},
        ItsCase{CollisionPolicy::kBipartiteRegionSearch,
                DetectorKind::kLinearSearch, "BipartiteLinear"},
        ItsCase{CollisionPolicy::kBipartiteRegionSearch,
                DetectorKind::kBitmapContiguous, "BipartiteContiguous"},
        ItsCase{CollisionPolicy::kBipartiteRegionSearch,
                DetectorKind::kBitmapStrided, "BipartiteStrided"}),
    [](const auto& info) { return info.param.name; });

TEST(ItsWithReplacement, FollowsTheoremOneDistribution) {
  SelectConfig config;
  config.with_replacement = true;
  ItsSelector selector(config);
  CounterStream rng(2024);
  sim::KernelStats stats;

  const std::vector<float> biases = {3, 6, 2, 2, 2};
  std::vector<std::uint64_t> counts(biases.size(), 0);
  for (std::uint32_t i = 0; i < 30000; ++i) {
    sim::WarpContext warp(stats);
    const auto picked =
        selector.select(biases, 1, rng, SelectCoords{i, 0, 0}, warp);
    ++counts[picked.at(0)];
  }
  const std::vector<double> expected = {3 / 15.0, 6 / 15.0, 2 / 15.0,
                                        2 / 15.0, 2 / 15.0};
  // df=4, 99.9% critical value ~18.5.
  EXPECT_LT(chi_square(counts, expected), 22.0);
}

TEST(ItsWithReplacement, AllowsRepeats) {
  SelectConfig config;
  config.with_replacement = true;
  ItsSelector selector(config);
  CounterStream rng(9);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  // One dominant candidate: repeats are near-certain.
  const std::vector<float> biases = {1000, 1};
  const auto picked =
      selector.select(biases, 8, rng, SelectCoords{0, 0, 0}, warp);
  ASSERT_EQ(picked.size(), 8u);
  EXPECT_GT(std::count(picked.begin(), picked.end(), 0u), 1);
}

TEST(ItsCounters, IterationsAndSampledArePopulated) {
  SelectConfig config;
  config.policy = CollisionPolicy::kRepeatedSampling;
  ItsSelector selector(config);
  CounterStream rng(10);
  sim::KernelStats stats;
  {
    sim::WarpContext warp(stats);
    const std::vector<float> biases = {100, 1, 1};  // collision-prone
    selector.select(biases, 3, rng, SelectCoords{0, 0, 0}, warp);
  }
  EXPECT_EQ(stats.sampled_vertices, 3u);
  EXPECT_GE(stats.select_iterations, 3u);
  EXPECT_GT(stats.collision_searches, 0u);
  EXPECT_GT(stats.lockstep_rounds, 0u);
}

TEST(ItsCounters, BipartiteNeedsFewerIterationsThanRepeated) {
  // Fig. 11's claim at unit scale: on a skewed CTPS, bipartite region
  // search resolves collisions without re-drawing, repeated sampling
  // burns iterations.
  const std::vector<float> biases = {50, 40, 1, 1, 1, 1, 1, 1, 1, 1};
  auto run = [&](CollisionPolicy policy) {
    SelectConfig config;
    config.policy = policy;
    ItsSelector selector(config);
    CounterStream rng(4242);
    sim::KernelStats stats;
    for (std::uint32_t i = 0; i < 3000; ++i) {
      sim::WarpContext warp(stats);
      selector.select(biases, 4, rng, SelectCoords{i, 0, 0}, warp);
    }
    return static_cast<double>(stats.select_iterations) /
           static_cast<double>(stats.sampled_vertices);
  };
  const double repeated = run(CollisionPolicy::kRepeatedSampling);
  const double bipartite = run(CollisionPolicy::kBipartiteRegionSearch);
  EXPECT_GT(repeated, bipartite * 1.2);
  EXPECT_GE(bipartite, 1.0);
}

TEST(ItsEdgeCases, KZeroOrEmptyBiases) {
  ItsSelector selector(SelectConfig{});
  CounterStream rng(1);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  EXPECT_TRUE(
      selector.select(std::vector<float>{1, 2}, 0, rng, {}, warp).empty());
  EXPECT_TRUE(selector.select(std::vector<float>{}, 3, rng, {}, warp).empty());
}

}  // namespace
}  // namespace csaw
