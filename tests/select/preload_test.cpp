// Tests of the persistent per-warp bitmap semantics: candidates sampled
// at earlier depths are preloaded into the detector, so SELECT collides
// with the instance's entire sample so far (paper §II-A, Fig. 7).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "select/its.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace csaw {
namespace {

struct PreloadCase {
  CollisionPolicy policy;
  DetectorKind detector;
  const char* name;
};

class PreloadPolicies : public ::testing::TestWithParam<PreloadCase> {
 protected:
  SelectConfig config() const {
    SelectConfig c;
    c.policy = GetParam().policy;
    c.detector = GetParam().detector;
    return c;
  }
};

TEST_P(PreloadPolicies, PreloadedCandidatesAreNeverSelected) {
  ItsSelector selector(config());
  CounterStream rng(404);
  sim::KernelStats stats;
  const std::vector<float> biases = {8, 4, 2, 1, 1, 1, 1, 1};
  const std::vector<std::uint32_t> pre = {0, 2};  // the heavy hitters

  for (std::uint32_t trial = 0; trial < 500; ++trial) {
    sim::WarpContext warp(stats);
    const auto picked = selector.select(biases, 3, rng,
                                        SelectCoords{trial, 0, 0}, warp, pre);
    ASSERT_EQ(picked.size(), 3u);
    for (auto idx : picked) {
      EXPECT_NE(idx, 0u) << "trial " << trial;
      EXPECT_NE(idx, 2u) << "trial " << trial;
    }
  }
}

TEST_P(PreloadPolicies, KClampsToUnblockedCandidates) {
  ItsSelector selector(config());
  CounterStream rng(405);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  const std::vector<float> biases = {1, 1, 1, 1};
  const std::vector<std::uint32_t> pre = {1, 3};
  const auto picked =
      selector.select(biases, 4, rng, SelectCoords{0, 0, 0}, warp, pre);
  const std::set<std::uint32_t> got(picked.begin(), picked.end());
  EXPECT_EQ(got, (std::set<std::uint32_t>{0, 2}));
}

TEST_P(PreloadPolicies, EverythingPreloadedSelectsNothing) {
  ItsSelector selector(config());
  CounterStream rng(406);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  const std::vector<float> biases = {2, 3};
  const std::vector<std::uint32_t> pre = {0, 1};
  EXPECT_TRUE(
      selector.select(biases, 1, rng, SelectCoords{0, 0, 0}, warp, pre)
          .empty());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PreloadPolicies,
    ::testing::Values(
        PreloadCase{CollisionPolicy::kRepeatedSampling,
                    DetectorKind::kLinearSearch, "RepeatedLinear"},
        PreloadCase{CollisionPolicy::kUpdatedSampling,
                    DetectorKind::kLinearSearch, "Updated"},
        PreloadCase{CollisionPolicy::kBipartiteRegionSearch,
                    DetectorKind::kBitmapStrided, "BipartiteStrided"},
        PreloadCase{CollisionPolicy::kBipartiteRegionSearch,
                    DetectorKind::kLinearSearch, "BipartiteLinear"}),
    [](const auto& info) { return info.param.name; });

TEST(Preload, DistributionIsConditionalOnUnblocked) {
  // With candidate 1 (mass 6/15) preloaded, selection must follow the
  // renormalized distribution over the rest: {3,2,2,2}/9.
  SelectConfig config;
  config.policy = CollisionPolicy::kBipartiteRegionSearch;
  ItsSelector selector(config);
  CounterStream rng(407);
  sim::KernelStats stats;
  const std::vector<float> biases = {3, 6, 2, 2, 2};
  const std::vector<std::uint32_t> pre = {1};

  std::vector<std::uint64_t> counts(4, 0);
  const std::map<std::uint32_t, std::size_t> index = {
      {0, 0}, {2, 1}, {3, 2}, {4, 3}};
  for (std::uint32_t trial = 0; trial < 30000; ++trial) {
    sim::WarpContext warp(stats);
    const auto picked = selector.select(biases, 1, rng,
                                        SelectCoords{trial, 0, 0}, warp, pre);
    ASSERT_EQ(picked.size(), 1u);
    ++counts[index.at(picked[0])];
  }
  const std::vector<double> expected = {3 / 9.0, 2 / 9.0, 2 / 9.0, 2 / 9.0};
  EXPECT_LT(chi_square(counts, expected), 20.0);  // df=3, 99.9% ~ 16.3
}

TEST(Preload, RaisesRepeatedSamplingIterations) {
  // The Fig. 11 mechanism: mass already claimed by earlier depths makes
  // repeated sampling retry.
  const std::vector<float> biases = {90, 2, 2, 2, 2, 2};
  const std::vector<std::uint32_t> pre = {0};  // 90% of the CTPS blocked
  SelectConfig config;
  config.policy = CollisionPolicy::kRepeatedSampling;
  ItsSelector selector(config);
  CounterStream rng(408);
  sim::KernelStats stats;
  for (std::uint32_t trial = 0; trial < 2000; ++trial) {
    sim::WarpContext warp(stats);
    selector.select(biases, 1, rng, SelectCoords{trial, 0, 0}, warp, pre);
  }
  const double avg = static_cast<double>(stats.select_iterations) /
                     static_cast<double>(stats.sampled_vertices);
  // Geometric with success probability 0.1: mean 10 trips.
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 14.0);
}

TEST(Preload, BipartiteResolvesBlockedMassInOneExtraProbe) {
  const std::vector<float> biases = {90, 2, 2, 2, 2, 2};
  const std::vector<std::uint32_t> pre = {0};
  SelectConfig config;
  config.policy = CollisionPolicy::kBipartiteRegionSearch;
  ItsSelector selector(config);
  CounterStream rng(409);
  sim::KernelStats stats;
  for (std::uint32_t trial = 0; trial < 2000; ++trial) {
    sim::WarpContext warp(stats);
    selector.select(biases, 1, rng, SelectCoords{trial, 0, 0}, warp, pre);
  }
  const double avg = static_cast<double>(stats.select_iterations) /
                     static_cast<double>(stats.sampled_vertices);
  // One do-while trip resolves the collision via the region transform.
  EXPECT_LT(avg, 1.1);
}

TEST(Preload, OutOfRangeIndexRejected) {
  ItsSelector selector(SelectConfig{});
  CounterStream rng(410);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  const std::vector<float> biases = {1, 1};
  const std::vector<std::uint32_t> pre = {5};
  EXPECT_THROW(
      selector.select(biases, 1, rng, SelectCoords{0, 0, 0}, warp, pre),
      CheckError);
}

}  // namespace
}  // namespace csaw
