#include <gtest/gtest.h>

#include <set>

#include "select/alias.hpp"
#include "select/dartboard.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace csaw {
namespace {

const std::vector<float> kPaperBiases = {3, 6, 2, 2, 2};
const std::vector<double> kPaperProbs = {3 / 15.0, 6 / 15.0, 2 / 15.0,
                                         2 / 15.0, 2 / 15.0};

TEST(Dartboard, DistributionMatchesBiases) {
  const Dartboard board(kPaperBiases);
  Xoshiro256 rng(31337);
  std::vector<std::uint64_t> counts(kPaperBiases.size(), 0);
  for (int i = 0; i < 30000; ++i) ++counts[board.draw(rng)];
  EXPECT_LT(chi_square(counts, kPaperProbs), 22.0);  // df=4
}

TEST(Dartboard, TrialCountExceedsAcceptedOnSkew) {
  // Rejection wastes darts when one bar dominates — the paper's argument
  // against dartboard on scale-free graphs.
  const std::vector<float> skewed = {100, 1, 1, 1, 1, 1, 1, 1};
  const Dartboard board(skewed);
  Xoshiro256 rng(7);
  std::uint64_t trials = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) board.draw(rng, &trials);
  // Acceptance rate = mean(bias)/max(bias) = (107/8)/100 ~ 13%; expect
  // >5x trial amplification with slack.
  EXPECT_GT(trials, static_cast<std::uint64_t>(kDraws) * 4);
}

TEST(Dartboard, UniformBiasesAcceptEveryDart) {
  const std::vector<float> uniform = {2, 2, 2, 2};
  const Dartboard board(uniform);
  Xoshiro256 rng(17);
  std::uint64_t trials = 0;
  for (int i = 0; i < 500; ++i) board.draw(rng, &trials);
  EXPECT_EQ(trials, 500u);
}

TEST(Dartboard, DistinctDrawsAreDistinct) {
  const Dartboard board(kPaperBiases);
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto picked = board.draw_distinct(3, rng);
    EXPECT_EQ(std::set<std::uint32_t>(picked.begin(), picked.end()).size(),
              3u);
  }
  EXPECT_THROW(board.draw_distinct(6, rng), CheckError);
}

TEST(Dartboard, RejectsDegenerateBiases) {
  EXPECT_THROW(Dartboard(std::vector<float>{}), CheckError);
  EXPECT_THROW(Dartboard(std::vector<float>{0, 0}), CheckError);
  EXPECT_THROW(Dartboard(std::vector<float>{-1, 2}), CheckError);
}

class AliasShapes : public ::testing::TestWithParam<std::vector<float>> {};

TEST_P(AliasShapes, ReconstructedProbabilitiesMatchTheoremOne) {
  const auto& biases = GetParam();
  double total = 0.0;
  for (float b : biases) total += b;
  const AliasTable table(biases);
  for (std::size_t i = 0; i < biases.size(); ++i) {
    EXPECT_NEAR(table.probability(i), biases[i] / total, 1e-5) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AliasShapes,
    ::testing::Values(std::vector<float>{3, 6, 2, 2, 2},
                      std::vector<float>{1},
                      std::vector<float>{1, 1, 1, 1, 1, 1, 1},
                      std::vector<float>{100, 1, 1, 1},
                      std::vector<float>{0, 5, 0, 5},
                      std::vector<float>{0.1f, 0.9f, 0.5f}));

TEST(Alias, EmpiricalDistributionMatches) {
  const AliasTable table(kPaperBiases);
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> counts(kPaperBiases.size(), 0);
  for (int i = 0; i < 30000; ++i) ++counts[table.sample(rng)];
  EXPECT_LT(chi_square(counts, kPaperProbs), 22.0);
}

TEST(Alias, DeterministicDrawCoversBins) {
  // Fig. 1(d): every bin holds at most two candidates; a draw with flip 0
  // picks the bin owner when its threshold is positive.
  const AliasTable table(kPaperBiases);
  for (std::size_t bin = 0; bin < table.size(); ++bin) {
    const double bin_r = (static_cast<double>(bin) + 0.5) / table.size();
    const auto idx = table.sample(bin_r, 0.0);
    EXPECT_LT(idx, kPaperBiases.size());
  }
}

TEST(Alias, ZeroBiasNeverSampled) {
  const std::vector<float> biases = {0, 5, 0, 5};
  const AliasTable table(biases);
  Xoshiro256 rng(123);
  for (int i = 0; i < 5000; ++i) {
    const auto idx = table.sample(rng);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Alias, RejectsDegenerateInput) {
  AliasTable table;
  EXPECT_THROW(table.build(std::vector<float>{}), CheckError);
  EXPECT_THROW(table.build(std::vector<float>{0, 0}), CheckError);
  EXPECT_THROW(table.build(std::vector<float>{-1, 1}), CheckError);
}

}  // namespace
}  // namespace csaw
