// Theorem 2 (bipartite region search) verification.
//
// The paper proves that adjusting the random number around a pre-selected
// region (l, h) reproduces the selection updated sampling would make on
// the recomputed CTPS. Two layers of tests:
//  - deterministic: the transform maps every updated-space draw to the
//    same candidate that the updated CTPS selects (grid over draws x
//    bias vectors x pre-selected vertex);
//  - statistical: ItsSelector's bipartite policy produces the same
//    selection distribution as the updated policy, while the *literal*
//    pseudocode transform (reusing the colliding draw without rescaling)
//    provably does not — which is why the corrected transform is the
//    default (see SelectConfig::literal_bipartite_transform).
#include <gtest/gtest.h>

#include <cmath>

#include "select/ctps.hpp"
#include "select/its.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace csaw {
namespace {

/// The Theorem 2 inverse transform: maps an updated-space draw u to the
/// original CTPS coordinate.
double brs_transform(double u, double l, double h) {
  const double delta = h - l;
  double r = u * (1.0 - delta);
  if (r >= l) r += delta;
  return r;
}

using BiasVector = std::vector<float>;

class BrsTheorem : public ::testing::TestWithParam<BiasVector> {};

TEST_P(BrsTheorem, TransformMatchesUpdatedSamplingForEveryDraw) {
  const BiasVector& biases = GetParam();
  Ctps original;
  original.build(biases);

  for (std::size_t s = 0; s < biases.size(); ++s) {
    if (biases[s] <= 0.0f) continue;
    // Updated CTPS: bias of s zeroed out.
    BiasVector updated_biases = biases;
    updated_biases[s] = 0.0f;
    Ctps updated;
    updated.build(updated_biases);

    const double l = original.lo(s);
    const double h = original.hi(s);
    for (int i = 1; i < 500; ++i) {
      const double u = i / 500.0;
      // Skip draws within float noise of an updated-region boundary.
      bool near_boundary = false;
      for (std::size_t k = 0; k <= updated.size(); ++k) {
        if (std::abs(u - updated.f()[k]) < 1e-5) near_boundary = true;
      }
      if (near_boundary) continue;

      const std::size_t expected = updated.locate(u);
      const std::size_t got = original.locate(brs_transform(u, l, h));
      EXPECT_EQ(got, expected)
          << "bias vector size " << biases.size() << ", preselected " << s
          << ", draw " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BiasShapes, BrsTheorem,
    ::testing::Values(BiasVector{3, 6, 2, 2, 2},          // the paper example
                      BiasVector{1, 1, 1, 1},             // uniform
                      BiasVector{100, 1, 1, 1, 1, 1},     // hub-dominated
                      BiasVector{1, 2, 4, 8, 16, 32},     // geometric
                      BiasVector{5, 0, 3, 0, 2},          // zero-bias holes
                      BiasVector{0.25f, 0.125f, 0.5f}));  // fractional

TEST(BrsPaperExample, LiteralAndCorrectedTransforms) {
  // Paper Fig. 6(c): r' = 0.58 hits pre-selected v7 with (l,h) =
  // (0.2, 0.6). The printed transform r = r'/lambda = 0.348 -> +delta ->
  // 0.748 selects v10, matching the figure.
  Ctps original;
  original.build(BiasVector{3, 6, 2, 2, 2});
  const double l = 0.2, h = 0.6, delta = h - l;

  double literal = 0.58 * (1.0 - delta);
  EXPECT_NEAR(literal, 0.348, 1e-9);
  if (literal >= l) literal += delta;
  EXPECT_NEAR(literal, 0.748, 1e-9);
  EXPECT_EQ(original.locate(literal), 3u);  // v10, as in the paper

  // The corrected transform first rescales the conditional draw.
  const double u = (0.58 - l) / delta;  // 0.95
  EXPECT_EQ(original.locate(brs_transform(u, l, h)), 4u);  // v11
}

/// Exact marginal selection probabilities for sampling k=2 without
/// replacement under sequential updated sampling.
std::vector<double> exact_two_pick_marginals(const BiasVector& biases) {
  double total = 0.0;
  for (float b : biases) total += b;
  std::vector<double> p(biases.size(), 0.0);
  for (std::size_t first = 0; first < biases.size(); ++first) {
    const double pf = biases[first] / total;
    for (std::size_t second = 0; second < biases.size(); ++second) {
      if (second == first) continue;
      const double ps = biases[second] / (total - biases[first]);
      p[first] += pf * ps / 2.0;   // counted as one of two picks
      p[second] += pf * ps / 2.0;
    }
  }
  // Each trial picks 2 of n; normalize so probabilities sum to 1 over
  // picked slots.
  // (Already normalized: sum over pairs of pf*ps = 1, each pair
  // contributes 1/2 + 1/2.)
  return p;
}

std::vector<std::uint64_t> sample_two_pick_counts(const SelectConfig& config,
                                                  const BiasVector& biases,
                                                  std::uint32_t trials,
                                                  std::uint64_t seed) {
  ItsSelector selector(config);
  CounterStream rng(seed);
  sim::KernelStats stats;
  std::vector<std::uint64_t> counts(biases.size(), 0);
  for (std::uint32_t i = 0; i < trials; ++i) {
    sim::WarpContext warp(stats);
    const auto picked =
        selector.select(biases, 2, rng, SelectCoords{i, 0, 0}, warp);
    for (auto idx : picked) ++counts[idx];
  }
  return counts;
}

TEST(BrsDistribution, BipartiteMatchesUpdatedSampling) {
  const BiasVector biases = {3, 6, 2, 2, 2};
  const auto expected = exact_two_pick_marginals(biases);
  const std::uint32_t kTrials = 40000;

  SelectConfig bipartite;
  bipartite.policy = CollisionPolicy::kBipartiteRegionSearch;
  bipartite.detector = DetectorKind::kBitmapStrided;
  const auto counts = sample_two_pick_counts(bipartite, biases, kTrials, 11);

  // df = 4; 99.9% critical value ~ 18.5.
  EXPECT_LT(chi_square(counts, expected), 22.0);
}

TEST(BrsDistribution, UpdatedPolicyMatchesExactMarginals) {
  const BiasVector biases = {3, 6, 2, 2, 2};
  const auto expected = exact_two_pick_marginals(biases);
  SelectConfig updated;
  updated.policy = CollisionPolicy::kUpdatedSampling;
  const auto counts = sample_two_pick_counts(updated, biases, 40000, 12);
  EXPECT_LT(chi_square(counts, expected), 22.0);
}

TEST(BrsDistribution, RepeatedSamplingAlsoMatches) {
  // Repeated sampling is slow but unbiased; it is the reference the paper
  // compares against in Fig. 10.
  const BiasVector biases = {3, 6, 2, 2, 2};
  const auto expected = exact_two_pick_marginals(biases);
  SelectConfig repeated;
  repeated.policy = CollisionPolicy::kRepeatedSampling;
  const auto counts = sample_two_pick_counts(repeated, biases, 40000, 13);
  EXPECT_LT(chi_square(counts, expected), 22.0);
}

TEST(BrsDistribution, LiteralPseudocodeTransformIsMeasurablyBiased) {
  // Reusing the colliding draw without rescaling covers only a
  // delta*(1-delta)-wide slice of the remaining space, over-weighting
  // regions adjacent to the collision. With 40k trials the chi-square
  // statistic explodes — this documents why the corrected transform is
  // the default.
  const BiasVector biases = {3, 6, 2, 2, 2};
  const auto expected = exact_two_pick_marginals(biases);
  SelectConfig literal;
  literal.policy = CollisionPolicy::kBipartiteRegionSearch;
  literal.literal_bipartite_transform = true;
  const auto counts = sample_two_pick_counts(literal, biases, 40000, 14);
  EXPECT_GT(chi_square(counts, expected), 100.0);
}

}  // namespace
}  // namespace csaw
