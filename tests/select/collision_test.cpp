#include "select/collision.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace csaw {
namespace {

class Detectors : public ::testing::TestWithParam<DetectorKind> {
 protected:
  std::unique_ptr<CollisionDetector> detector() const {
    return make_detector(GetParam());
  }
};

TEST_P(Detectors, FirstRecordSucceedsSecondCollides) {
  auto d = detector();
  d->reset(50);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  EXPECT_FALSE(d->test_and_record(17, warp));
  EXPECT_TRUE(d->test_and_record(17, warp));
  EXPECT_TRUE(d->is_selected(17));
  EXPECT_FALSE(d->is_selected(16));
  EXPECT_EQ(stats.collisions, 1u);
}

TEST_P(Detectors, SelectedListPreservesOrder) {
  auto d = detector();
  d->reset(10);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  d->test_and_record(4, warp);
  d->test_and_record(1, warp);
  d->test_and_record(9, warp);
  const auto selected = d->selected();
  EXPECT_EQ(std::vector<std::uint32_t>(selected.begin(), selected.end()),
            (std::vector<std::uint32_t>{4, 1, 9}));
}

TEST_P(Detectors, ResetForgetsEverything) {
  auto d = detector();
  d->reset(20);
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  d->test_and_record(3, warp);
  d->reset(20);
  EXPECT_FALSE(d->is_selected(3));
  EXPECT_TRUE(d->selected().empty());
  EXPECT_FALSE(d->test_and_record(3, warp));
}

TEST_P(Detectors, AgreesWithReferenceOnRandomWorkload) {
  // Property test: every detector must give byte-identical answers to a
  // std::set reference across random probe sequences and pool sizes.
  Xoshiro256 rng(2718);
  for (int round = 0; round < 20; ++round) {
    const std::size_t pool = 1 + rng.bounded(300);
    auto d = detector();
    d->reset(pool);
    std::set<std::size_t> reference;
    sim::KernelStats stats;
    sim::WarpContext warp(stats);
    for (int probe = 0; probe < 200; ++probe) {
      const std::size_t idx = rng.bounded(pool);
      const bool expected = !reference.insert(idx).second;
      EXPECT_EQ(d->test_and_record(idx, warp), expected)
          << "pool=" << pool << " idx=" << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, Detectors,
    ::testing::Values(DetectorKind::kLinearSearch,
                      DetectorKind::kBitmapContiguous,
                      DetectorKind::kBitmapStrided),
    [](const auto& info) {
      switch (info.param) {
        case DetectorKind::kLinearSearch: return "Linear";
        case DetectorKind::kBitmapContiguous: return "BitmapContiguous";
        case DetectorKind::kBitmapStrided: return "BitmapStrided";
      }
      return "Unknown";
    });

TEST(DetectorCosts, LinearSearchCountsGrowWithListBitmapStaysConstant) {
  // Fig. 12's mechanism: the shared-memory baseline pays one comparison
  // per stored vertex per probe, the bitmap one probe total.
  auto linear = make_detector(DetectorKind::kLinearSearch);
  auto bitmap = make_detector(DetectorKind::kBitmapStrided);
  linear->reset(64);
  bitmap->reset(64);

  sim::KernelStats linear_stats, bitmap_stats;
  {
    sim::WarpContext warp(linear_stats);
    for (std::size_t i = 0; i < 16; ++i) linear->test_and_record(i, warp);
  }
  {
    sim::WarpContext warp(bitmap_stats);
    for (std::size_t i = 0; i < 16; ++i) bitmap->test_and_record(i, warp);
  }
  // Linear: sum over probes of max(list length, 1) = 1+1+2+...+15 = 121.
  EXPECT_EQ(linear_stats.collision_searches, 121u);
  // Bitmap: one search per probe.
  EXPECT_EQ(bitmap_stats.collision_searches, 16u);
  EXPECT_EQ(bitmap_stats.atomic_ops, 16u);
  EXPECT_EQ(linear_stats.atomic_ops, 0u);
}

TEST(DetectorCosts, StridedBitmapHasFewerConflictsThanContiguous) {
  auto contiguous = make_detector(DetectorKind::kBitmapContiguous);
  auto strided = make_detector(DetectorKind::kBitmapStrided);
  contiguous->reset(256);
  strided->reset(256);

  sim::KernelStats cs, ss;
  {
    sim::WarpContext warp(cs);
    for (std::size_t i = 0; i < 32; ++i) contiguous->test_and_record(i, warp);
  }
  {
    sim::WarpContext warp(ss);
    for (std::size_t i = 0; i < 32; ++i) strided->test_and_record(i, warp);
  }
  EXPECT_GT(cs.atomic_conflicts, ss.atomic_conflicts);
  EXPECT_EQ(ss.atomic_conflicts, 0u);
}

}  // namespace
}  // namespace csaw
