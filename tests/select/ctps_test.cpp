#include "select/ctps.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace csaw {
namespace {

TEST(Ctps, PaperFig1Example) {
  // Fig. 1(b): biases {3,6,2,2,2} -> prefix {0,3,9,11,13,15} -> CTPS
  // {0, 0.2, 0.6, 0.733, 0.867, 1}.
  Ctps ctps;
  const std::vector<float> biases = {3, 6, 2, 2, 2};
  ctps.build(biases);
  ASSERT_EQ(ctps.size(), 5u);
  EXPECT_FLOAT_EQ(static_cast<float>(ctps.lo(0)), 0.0f);
  EXPECT_NEAR(ctps.hi(0), 0.2, 1e-6);
  EXPECT_NEAR(ctps.hi(1), 0.6, 1e-6);
  EXPECT_NEAR(ctps.hi(2), 11.0 / 15.0, 1e-6);
  EXPECT_NEAR(ctps.hi(3), 13.0 / 15.0, 1e-6);
  EXPECT_FLOAT_EQ(static_cast<float>(ctps.hi(4)), 1.0f);

  // The paper's r = 0.5 falls in v7's region (candidate index 1).
  EXPECT_EQ(ctps.locate(0.5), 1u);
}

TEST(Ctps, TheoremOneRegionWidths) {
  // Theorem 1: region width of candidate k equals b_k / sum(b).
  Ctps ctps;
  const std::vector<float> biases = {1.5f, 0.25f, 4.0f, 2.25f};
  const double total = 8.0;
  ctps.build(biases);
  for (std::size_t k = 0; k < biases.size(); ++k) {
    EXPECT_NEAR(ctps.hi(k) - ctps.lo(k), biases[k] / total, 1e-6) << k;
  }
}

TEST(Ctps, LocateFindsEveryRegionOnGrid) {
  Ctps ctps;
  const std::vector<float> biases = {2, 1, 3, 4};
  ctps.build(biases);
  for (int i = 0; i < 1000; ++i) {
    const double r = i / 1000.0;
    const std::size_t k = ctps.locate(r);
    // Float storage vs double draws: boundaries may be off by one ULP.
    EXPECT_GE(r, ctps.lo(k) - 1e-6);
    EXPECT_LT(r, ctps.hi(k) + 1e-6);
  }
}

TEST(Ctps, ZeroBiasRegionsAreNeverSelected) {
  Ctps ctps;
  const std::vector<float> biases = {0, 2, 0, 0, 3, 0};
  ctps.build(biases);
  EXPECT_EQ(ctps.positive_candidates(), 2u);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t k = ctps.locate(i / 2000.0);
    EXPECT_TRUE(k == 1 || k == 4) << "selected zero-bias candidate " << k;
  }
}

TEST(Ctps, BoundariesAreExact) {
  Ctps ctps;
  ctps.build(std::vector<float>{1, 1});
  EXPECT_EQ(ctps.locate(0.0), 0u);
  EXPECT_EQ(ctps.locate(0.4999), 0u);
  EXPECT_EQ(ctps.locate(0.5), 1u);
  EXPECT_EQ(ctps.locate(0.9999), 1u);
}

TEST(Ctps, SingleCandidate) {
  Ctps ctps;
  ctps.build(std::vector<float>{7.0f});
  EXPECT_EQ(ctps.size(), 1u);
  EXPECT_EQ(ctps.locate(0.0), 0u);
  EXPECT_EQ(ctps.locate(0.999), 0u);
}

TEST(Ctps, RejectsDegenerateInput) {
  Ctps ctps;
  EXPECT_THROW(ctps.build(std::vector<float>{}), CheckError);
  EXPECT_THROW(ctps.build(std::vector<float>{0, 0, 0}), CheckError);
  EXPECT_THROW(ctps.build(std::vector<float>{1, -1}), CheckError);
  ctps.build(std::vector<float>{1});
  EXPECT_THROW(ctps.locate(1.0), CheckError);
  EXPECT_THROW(ctps.locate(-0.1), CheckError);
}

TEST(Ctps, ChargesWarpForScanAndSearch) {
  sim::KernelStats stats;
  sim::WarpContext warp(stats);
  Ctps ctps;
  const std::vector<float> biases(100, 1.0f);
  ctps.build(biases, &warp);
  EXPECT_GT(stats.lockstep_rounds, 0u);
  EXPECT_GT(stats.global_bytes, 0u);
  const auto rounds_before = stats.lockstep_rounds;
  ctps.locate(0.5, &warp);
  EXPECT_GT(stats.lockstep_rounds, rounds_before);
}

}  // namespace
}  // namespace csaw
