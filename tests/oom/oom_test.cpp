#include "oom/oom_engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algorithms/forest_fire.hpp"
#include "algorithms/neighbor_sampling.hpp"
#include "algorithms/node2vec.hpp"
#include "algorithms/random_walks.hpp"
#include "algorithms/snowball.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace csaw {
namespace {

std::vector<VertexId> spread_seeds(const CsrGraph& g, std::uint32_t n) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * 97) % g.num_vertices());
  }
  return seeds;
}

struct OomToggles {
  bool batched;
  bool workload_aware;
  bool balancing;
  const char* name;
};

class OomConfigs : public ::testing::TestWithParam<OomToggles> {
 protected:
  OomConfig config() const {
    OomConfig c;
    c.num_partitions = 4;
    c.resident_partitions = 2;
    c.num_streams = 2;
    c.batched = GetParam().batched;
    c.workload_aware = GetParam().workload_aware;
    c.block_balancing = GetParam().balancing;
    return c;
  }
};

TEST_P(OomConfigs, WalkMatchesInMemoryBitForBit) {
  // The §V-B correctness claim, made testable by counter-based RNG: the
  // out-of-memory engine must produce exactly the sample the in-memory
  // engine produces, whatever the schedule.
  const CsrGraph g = generate_rmat(1024, 8192, 51);
  auto setup = biased_random_walk(/*length=*/12);
  const auto seeds = spread_seeds(g, 40);

  CsrGraphView view(g);
  SamplingEngine in_memory(view, setup.policy, setup.spec);
  sim::Device d_in;
  const SampleRun reference = in_memory.run_single_seed(d_in, seeds);

  OomEngine oom(g, setup.policy, setup.spec, config());
  sim::Device d_oom;
  const OomRun run = oom.run_single_seed(d_oom, seeds);

  ASSERT_EQ(run.samples.num_instances(), reference.samples.num_instances());
  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(run.samples.edges(i), reference.samples.edges(i))
        << "instance " << i << " diverged under " << GetParam().name;
  }
}

TEST_P(OomConfigs, MetropolisHastingsAlsoMatches) {
  const CsrGraph g = generate_rmat(512, 4096, 52);
  auto setup = metropolis_hastings_walk(10);
  const auto seeds = spread_seeds(g, 16);

  CsrGraphView view(g);
  SamplingEngine in_memory(view, setup.policy, setup.spec);
  sim::Device d_in;
  const SampleRun reference = in_memory.run_single_seed(d_in, seeds);

  OomEngine oom(g, setup.policy, setup.spec, config());
  sim::Device d_oom;
  const OomRun run = oom.run_single_seed(d_oom, seeds);
  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(run.samples.edges(i), reference.samples.edges(i));
  }
}

TEST_P(OomConfigs, NeighborSamplingInvariantsHold) {
  const CsrGraph g = generate_rmat(1024, 8192, 53);
  auto setup = biased_neighbor_sampling(2, 3);
  const auto seeds = spread_seeds(g, 32);

  OomEngine oom(g, setup.policy, setup.spec, config());
  sim::Device device;
  const OomRun run = oom.run_single_seed(device, seeds);

  EXPECT_GT(run.samples.total_edges(), 0u);
  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    std::set<VertexId> seen = {seeds[i]};
    for (const Edge& e : run.samples.edges(i)) {
      EXPECT_TRUE(g.has_edge(e.src, e.dst));
      // Never more than branching allows: 2 + 4 + 8.
    }
    EXPECT_LE(run.samples.edges(i).size(), 14u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Toggles, OomConfigs,
    ::testing::Values(OomToggles{false, false, false, "Baseline"},
                      OomToggles{true, false, false, "BA"},
                      OomToggles{true, true, false, "BA_WS"},
                      OomToggles{true, true, true, "BA_WS_BAL"},
                      OomToggles{false, true, true, "WS_BAL_NoBatch"}),
    [](const auto& info) { return info.param.name; });

TEST(Oom, WorkloadAwareSchedulingReducesTransfers) {
  // Fig. 15's mechanism: keeping the busiest partition resident until its
  // queue drains avoids re-transferring it every round.
  const CsrGraph g = generate_rmat(2048, 16384, 54);
  auto setup = biased_neighbor_sampling(2, 3);
  const auto seeds = spread_seeds(g, 128);

  auto run_with = [&](bool workload_aware) {
    OomConfig c;
    c.num_partitions = 4;
    c.resident_partitions = 2;
    c.workload_aware = workload_aware;
    OomEngine oom(g, setup.policy, setup.spec, c);
    sim::Device device;
    return oom.run_single_seed(device, seeds).metrics.partition_transfers;
  };
  EXPECT_LE(run_with(true), run_with(false));
}

TEST(Oom, BatchingChangesWorkDistributionNotLaunches) {
  // Both modes launch one kernel per (partition, wave); batching changes
  // the work *distribution*: vertex-grained (a warp per frontier entry)
  // versus instance-grained (a warp per instance, entries serialized).
  const CsrGraph g = generate_rmat(1024, 8192, 55);
  auto setup = biased_neighbor_sampling(2, 3);
  const auto seeds = spread_seeds(g, 64);

  auto run_mode = [&](bool batched) {
    OomConfig c;
    c.batched = batched;
    OomEngine oom(g, setup.policy, setup.spec, c);
    sim::Device device;
    return oom.run_single_seed(device, seeds);
  };
  const OomRun batched = run_mode(true);
  const OomRun grouped = run_mode(false);
  // Identical logical work (same total frontier entries -> same sampled
  // edges), but fewer, longer warps without batching.
  EXPECT_EQ(batched.samples.total_edges(), grouped.samples.total_edges());
  EXPECT_GT(batched.stats.warps, grouped.stats.warps);
  EXPECT_GE(grouped.stats.max_warp_rounds, batched.stats.max_warp_rounds);
}

TEST(Oom, BatchingImprovesSimulatedTime) {
  const CsrGraph g = generate_rmat(1024, 8192, 56);
  auto setup = unbiased_neighbor_sampling(2, 3);
  const auto seeds = spread_seeds(g, 96);

  auto seconds = [&](bool batched) {
    OomConfig c;
    c.batched = batched;
    c.workload_aware = false;
    c.block_balancing = false;
    OomEngine oom(g, setup.policy, setup.spec, c);
    sim::Device device;
    return oom.run_single_seed(device, seeds).sim_seconds;
  };
  EXPECT_LT(seconds(true), seconds(false));
}

TEST(Oom, MultiSeedInstancesWork) {
  const CsrGraph g = generate_rmat(512, 4096, 57);
  auto setup = unbiased_neighbor_sampling(2, 2);
  const std::vector<std::vector<VertexId>> seeds = {
      {0, 5, 9}, {1}, {2, 3}};
  OomEngine oom(g, setup.policy, setup.spec, OomConfig{});
  sim::Device device;
  const OomRun run = oom.run(device, seeds);
  EXPECT_EQ(run.samples.num_instances(), 3u);
  EXPECT_GT(run.samples.total_edges(), 0u);
}

TEST(Oom, RejectsInMemoryOnlySpecs) {
  const CsrGraph g = generate_rmat(256, 1024, 58);
  auto snow = snowball(2);
  EXPECT_THROW(OomEngine(g, snow.policy, snow.spec, OomConfig{}), CheckError);

  OomConfig bad;
  bad.resident_partitions = 9;
  bad.num_partitions = 4;
  auto ns = unbiased_neighbor_sampling(2, 2);
  EXPECT_THROW(OomEngine(g, ns.policy, ns.spec, bad), CheckError);
}

TEST(Oom, ForestFireRunsWithBranchingCap) {
  const CsrGraph g = generate_rmat(512, 4096, 59);
  auto setup = forest_fire(0.7, 2);
  OomEngine oom(g, setup.policy, setup.spec, OomConfig{});
  sim::Device device;
  const OomRun run = oom.run_single_seed(device, spread_seeds(g, 32));
  EXPECT_GT(run.samples.total_edges(), 0u);
  for (std::uint32_t i = 0; i < 32; ++i) {
    for (const Edge& e : run.samples.edges(i)) {
      EXPECT_TRUE(g.has_edge(e.src, e.dst));
    }
  }
}

TEST(Oom, TransfersAndMetricsPopulated) {
  const CsrGraph g = generate_rmat(1024, 8192, 60);
  auto setup = biased_neighbor_sampling(2, 2);
  OomEngine oom(g, setup.policy, setup.spec, OomConfig{});
  sim::Device device;
  const OomRun run = oom.run_single_seed(device, spread_seeds(g, 64));

  EXPECT_GT(run.metrics.partition_transfers, 0u);
  EXPECT_GT(run.metrics.bytes_transferred, 0u);
  EXPECT_GT(run.metrics.scheduling_rounds, 0u);
  EXPECT_GT(run.metrics.kernel_launches, 0u);
  EXPECT_GT(run.sim_seconds, 0.0);
  EXPECT_GT(run.stats.warps, 0u);
  EXPECT_EQ(device.transfer().count(), run.metrics.partition_transfers);
}

}  // namespace
}  // namespace csaw
