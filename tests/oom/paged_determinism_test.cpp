// The cached OOM path's contract (ROADMAP item 1): the demand-driven
// partition cache decides *when* bytes move, never *which* bytes are
// sampled. Samples must be byte-identical to the legacy global-plan path
// at every cache capacity and host thread count, the simulated schedule
// must not depend on the thread count, and the cache must actually earn
// its keep — fewer transfers and better seps() than re-transferring every
// round. Walk algorithms only: their sample bytes are order-independent
// (counter-based RNG, no visited filtering), which is exactly the class
// the byte-contract covers.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/node2vec.hpp"
#include "algorithms/random_walks.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"

namespace csaw {
namespace {

constexpr std::uint32_t kPartitions = 8;

const CsrGraph& paged_graph() {
  static const CsrGraph g = generate_rmat(2048, 16384, 77);
  return g;
}

std::vector<VertexId> spread_seeds(std::uint32_t n) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * 97) % paged_graph().num_vertices());
  }
  return seeds;
}

SamplerOptions paged_options(bool demand_cache, std::uint32_t capacity,
                             std::uint32_t threads) {
  SamplerOptions options;
  options.mode = ExecutionMode::kOutOfMemory;
  options.num_partitions = kPartitions;
  options.resident_partitions = capacity;
  options.num_streams = 2;
  options.num_threads = threads;
  options.oom_demand_cache = demand_cache;
  return options;
}

RunResult run_walk(const AlgorithmSetup& setup, const SamplerOptions& options,
                   std::uint32_t num_seeds = 48) {
  Sampler sampler(paged_graph(), setup, options);
  return sampler.run_single_seed(spread_seeds(num_seeds));
}

void expect_same_samples(const RunResult& a, const RunResult& b,
                         const char* what) {
  ASSERT_EQ(a.samples.num_instances(), b.samples.num_instances()) << what;
  for (std::uint32_t i = 0; i < a.samples.num_instances(); ++i) {
    EXPECT_EQ(a.samples.edges(i), b.samples.edges(i))
        << what << ": instance " << i << " diverged";
  }
}

class PagedCapacities : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PagedCapacities, WalkBytesMatchLegacyAtEveryThreadCount) {
  // One legacy reference (global residency plan, serial), compared
  // against the cached path at this capacity across host widths. The
  // samples may not depend on residency schedule, eviction pressure
  // (capacity 1 = thrash, 8 = everything resident) or thread count.
  const auto setup = biased_random_walk(/*length=*/12);
  const RunResult legacy = run_walk(setup, paged_options(false, 2, 1));
  ASSERT_TRUE(legacy.oom.has_value());

  const std::uint32_t capacity = GetParam();
  double first_seconds = -1.0;
  for (const std::uint32_t threads : {1u, 2u, 7u}) {
    const RunResult cached =
        run_walk(setup, paged_options(true, capacity, threads));
    ASSERT_TRUE(cached.oom.has_value());
    expect_same_samples(cached, legacy, "cached vs legacy");
    // The simulated schedule is a pure function of the run, not of host
    // parallelism: byte-equal timing across widths.
    if (first_seconds < 0.0) {
      first_seconds = cached.sim_seconds;
    } else {
      EXPECT_EQ(cached.sim_seconds, first_seconds)
          << "thread count leaked into the simulated schedule at capacity "
          << capacity << ", " << threads << " threads";
    }
  }
}

TEST_P(PagedCapacities, DynamicBiasWalkAlsoMatches) {
  // node2vec's bias depends on the previous step (kDynamic), the hardest
  // case for residency reordering: the cache must still be invisible.
  const auto setup = node2vec(/*length=*/10, /*p=*/2.0, /*q=*/0.5);
  const RunResult legacy = run_walk(setup, paged_options(false, 2, 1), 24);
  const RunResult cached =
      run_walk(setup, paged_options(true, GetParam(), 2), 24);
  expect_same_samples(cached, legacy, "node2vec cached vs legacy");
}

INSTANTIATE_TEST_SUITE_P(Capacities, PagedCapacities,
                         ::testing::Values(1u, 4u, kPartitions),
                         [](const auto& info) {
                           return "Capacity" + std::to_string(info.param);
                         });

TEST(PagedDeterminism, TaggedRunsMatchSoloOffsets) {
  // The service-tier entry point: instance i tagged with global id t must
  // produce, through the cache, the bytes a solo legacy run would have
  // produced at instance_id_offset t.
  const auto setup = biased_random_walk(/*length=*/12);
  const auto seeds = spread_seeds(8);
  std::vector<std::vector<VertexId>> seed_lists;
  for (const VertexId s : seeds) seed_lists.push_back({s});
  const std::vector<std::uint32_t> tags = {3, 10, 11, 40, 41, 42, 90, 200};

  Sampler cached(paged_graph(), setup, paged_options(true, 4, 2));
  const RunResult tagged = cached.run_tagged(seed_lists, tags);

  for (std::size_t i = 0; i < tags.size(); ++i) {
    SamplerOptions solo_options = paged_options(false, 2, 1);
    solo_options.instance_id_offset = tags[i];
    Sampler solo(paged_graph(), setup, solo_options);
    const RunResult reference = solo.run_single_seed({&seeds[i], 1});
    EXPECT_EQ(tagged.samples.edges(static_cast<std::uint32_t>(i)),
              reference.samples.edges(0))
        << "tag " << tags[i];
  }
}

TEST(PagedDeterminism, CacheEarnsItsTransfers) {
  // The point of the subsystem: the legacy plan re-transfers every chosen
  // partition every scheduling round; the cache keeps partitions resident
  // and overlaps prefetches, so at the same resident budget (six of the
  // eight partitions — the regime where most of the working set stays
  // warm) it must move fewer bytes and finish the same samples sooner
  // (better seps).
  const auto setup = biased_random_walk(/*length=*/12);
  const RunResult legacy = run_walk(setup, paged_options(false, 6, 1));
  const RunResult cached = run_walk(setup, paged_options(true, 6, 1));
  ASSERT_TRUE(legacy.oom.has_value());
  ASSERT_TRUE(cached.oom.has_value());

  EXPECT_LT(cached.oom->partition_transfers, legacy.oom->partition_transfers);
  EXPECT_LT(cached.oom->bytes_transferred, legacy.oom->bytes_transferred);
  EXPECT_GT(cached.oom->cache_hits, 0u);
  EXPECT_GT(cached.oom->scheduling_rounds, 0u);
  EXPECT_GT(cached.seps(), legacy.seps());

  // Legacy metrics stay clean of cache counters, and the cached run's
  // overlap measurement is sane (bounded by total transfer time).
  EXPECT_EQ(legacy.oom->cache_hits, 0u);
  EXPECT_EQ(legacy.oom->prefetch_transfers, 0u);
  EXPECT_EQ(legacy.oom->transfer_overlap_seconds, 0.0);
  EXPECT_GE(cached.oom->transfer_overlap_seconds, 0.0);
  EXPECT_LE(cached.oom->transfer_overlap_seconds, cached.sim_seconds);
}

TEST(PagedDeterminism, PrefetchOverlapsComputeUnderPressure) {
  // With fewer slots than partitions the cache must thrash — evictions
  // happen — yet prefetches still land behind the computing partition:
  // speculative transfers issued, and real transfer/kernel overlap on the
  // simulated timeline. Capacity 4 is the smallest cache that reserves a
  // prefetch slot under contention (below that, compute width wins).
  const auto setup = biased_random_walk(/*length=*/16);
  const RunResult cached = run_walk(setup, paged_options(true, 4, 2));
  ASSERT_TRUE(cached.oom.has_value());
  EXPECT_GT(cached.oom->prefetch_transfers, 0u);
  EXPECT_GT(cached.oom->cache_evictions, 0u);
  EXPECT_GT(cached.oom->transfer_overlap_seconds, 0.0);
}

TEST(PagedDeterminism, BatchedServingStaysWarmAcrossChunks) {
  // run_batches reuses the sampler's cache across chunks: later chunks
  // find partitions already resident, so a batched run demand-loads less
  // than chunk-count times the partition set — and the bytes still match
  // one big legacy run.
  const auto setup = biased_random_walk(/*length=*/12);
  const auto seeds = spread_seeds(48);

  Sampler cached(paged_graph(), setup, paged_options(true, kPartitions, 2));
  const RunResult chunked = cached.run_batches_single_seed(seeds, 12);
  ASSERT_TRUE(chunked.oom.has_value());

  const RunResult legacy = run_walk(setup, paged_options(false, 2, 1));
  expect_same_samples(chunked, legacy, "chunked cached vs whole legacy");

  // With every partition fitting, only the first chunk's demand loads
  // touch the link: at most one transfer per partition for all 4 chunks.
  EXPECT_LE(chunked.oom->partition_transfers, kPartitions);
  EXPECT_GT(chunked.oom->cache_hits, 0u);
}

}  // namespace
}  // namespace csaw
