// Gang scheduling (non-batched baseline) and transfer accounting of the
// out-of-memory engine.
#include <gtest/gtest.h>

#include "algorithms/neighbor_sampling.hpp"
#include "algorithms/random_walks.hpp"
#include "graph/generators.hpp"
#include "oom/oom_engine.hpp"

namespace csaw {
namespace {

std::vector<VertexId> spread_seeds(const CsrGraph& g, std::uint32_t n) {
  std::vector<VertexId> seeds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    seeds[i] = static_cast<VertexId>((i * 53) % g.num_vertices());
  }
  return seeds;
}

class GangSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GangSizes, SamplesAreIndependentOfGangSize) {
  // Gang scheduling changes when instances run, never what they sample:
  // the counter-based RNG keys draws by instance, not schedule.
  const CsrGraph g = generate_rmat(512, 4096, 71);
  auto setup = biased_random_walk(8);
  const auto seeds = spread_seeds(g, 48);

  OomConfig batched;
  batched.batched = true;
  OomEngine reference_engine(g, setup.policy, setup.spec, batched);
  sim::Device d0;
  const OomRun reference = reference_engine.run_single_seed(d0, seeds);

  OomConfig ganged;
  ganged.batched = false;
  ganged.unbatched_gang_size = GetParam();
  OomEngine engine(g, setup.policy, setup.spec, ganged);
  sim::Device d1;
  const OomRun run = engine.run_single_seed(d1, seeds);

  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(run.samples.edges(i), reference.samples.edges(i))
        << "instance " << i << " gang " << GetParam();
  }
}

TEST_P(GangSizes, TransfersScaleWithGangCount) {
  const CsrGraph g = generate_rmat(1024, 8192, 72);
  auto setup = biased_neighbor_sampling(2, 2);
  const auto seeds = spread_seeds(g, 64);

  auto transfers = [&](std::uint32_t gang_size, bool batched) {
    OomConfig c;
    c.batched = batched;
    c.unbatched_gang_size = gang_size;
    OomEngine engine(g, setup.policy, setup.spec, c);
    sim::Device device;
    return engine.run_single_seed(device, seeds)
        .metrics.partition_transfers;
  };
  const auto merged = transfers(0xFFFFFFFF, true);
  const auto ganged = transfers(GetParam(), false);
  // Each gang pays its own residency cycle: transfers never decrease and
  // grow roughly with the gang count.
  EXPECT_GE(ganged, merged);
  if (GetParam() <= 16) {
    EXPECT_GE(ganged, merged * (64 / GetParam()) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GangSizes,
                         ::testing::Values(8, 16, 32, 64));

TEST(OomGang, MetropolisHastingsBitIdenticalUnderGangScheduling) {
  const CsrGraph g = generate_rmat(512, 4096, 73);
  auto setup = metropolis_hastings_walk(12);
  const auto seeds = spread_seeds(g, 24);

  CsrGraphView view(g);
  SamplingEngine in_memory(view, setup.policy, setup.spec);
  sim::Device d_in;
  const SampleRun reference = in_memory.run_single_seed(d_in, seeds);

  OomConfig config;
  config.batched = false;
  config.unbatched_gang_size = 7;  // deliberately unaligned
  config.workload_aware = false;
  OomEngine engine(g, setup.policy, setup.spec, config);
  sim::Device d_oom;
  const OomRun run = engine.run_single_seed(d_oom, seeds);
  for (std::uint32_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(run.samples.edges(i), reference.samples.edges(i));
  }
}

TEST(OomGang, SimulatedTimeWorsensWithSmallGangs) {
  const CsrGraph g = generate_rmat(1024, 8192, 74);
  auto setup = unbiased_neighbor_sampling(2, 2);
  const auto seeds = spread_seeds(g, 96);

  auto seconds = [&](std::uint32_t gang_size) {
    OomConfig c;
    c.batched = false;
    c.unbatched_gang_size = gang_size;
    OomEngine engine(g, setup.policy, setup.spec, c);
    sim::Device device;
    return engine.run_single_seed(device, seeds).sim_seconds;
  };
  EXPECT_GT(seconds(8), seconds(96));
}

TEST(OomGang, SingleInstanceStillWorks) {
  const CsrGraph g = generate_rmat(256, 2048, 75);
  auto setup = biased_neighbor_sampling(2, 2);
  OomConfig config;
  config.batched = false;
  config.unbatched_gang_size = 4;
  OomEngine engine(g, setup.policy, setup.spec, config);
  sim::Device device;
  const OomRun run =
      engine.run_single_seed(device, std::vector<VertexId>{5});
  EXPECT_EQ(run.samples.num_instances(), 1u);
  EXPECT_GT(run.samples.total_edges(), 0u);
}

}  // namespace
}  // namespace csaw
